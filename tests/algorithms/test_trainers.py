"""Behavioral tests for every training algorithm.

Shared across trainers: runs complete, losses decrease on an easy problem,
histories are deterministic in the seed, and cost accounting is coherent.
Then per-algorithm specifics (synchrony, policy adoption, PS bias, fixed
subgraph, group formation).
"""

import numpy as np
import pytest

from repro.algorithms import (
    TrainerConfig,
    create_trainer,
    trainer_names,
)
from repro.experiments import heterogeneous_scenario, make_workload, run_trainer

ALL_ALGORITHMS = trainer_names()


@pytest.fixture(scope="module")
def scenario():
    return heterogeneous_scenario(num_workers=4, seed=1)


@pytest.fixture(scope="module")
def workload():
    return make_workload(
        "mobilenet", "mnist", num_workers=4, batch_size=32, num_samples=512, seed=1
    )


def quick_config(**kwargs):
    defaults = dict(max_sim_time=30.0, eval_interval_s=5.0, seed=3)
    defaults.update(kwargs)
    return TrainerConfig(**defaults)


class TestAllTrainersShared:
    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_run_completes_and_loss_decreases(self, name, scenario, workload):
        result = run_trainer(name, scenario, workload, quick_config())
        arrays = result.history.as_arrays()
        assert result.global_steps > 0
        assert arrays["train_loss"][-1] < arrays["train_loss"][0]

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_deterministic_given_seed(self, name, scenario, workload):
        a = run_trainer(name, scenario, workload, quick_config())
        b = run_trainer(name, scenario, workload, quick_config())
        np.testing.assert_array_equal(
            a.history.as_arrays()["train_loss"], b.history.as_arrays()["train_loss"]
        )
        assert a.global_steps == b.global_steps

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_cost_accounting_coherent(self, name, scenario, workload):
        result = run_trainer(name, scenario, workload, quick_config())
        summary = result.costs.summary()
        assert summary["epoch_time"] > 0
        assert summary["computation_cost"] > 0
        assert summary["communication_cost"] >= 0
        assert summary["epoch_time"] == pytest.approx(
            summary["computation_cost"] + summary["communication_cost"]
        )

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_max_epochs_stops_early(self, name, scenario, workload):
        config = quick_config(max_sim_time=500.0, max_epochs=2.0)
        result = run_trainer(name, scenario, workload, config)
        assert result.sim_time < 500.0


class TestRegistry:
    def test_all_expected_names(self):
        assert set(ALL_ALGORITHMS) == {
            "netmax", "adpsgd", "allreduce", "prague",
            "ps-syn", "ps-asyn", "saps", "adpsgd-monitor",
        }

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="valid"):
            create_trainer("sgd-ultra", None, None, None, None, None)

    def test_case_insensitive(self, scenario, workload):
        result = run_trainer("NetMax", scenario, workload, quick_config())
        assert result.algorithm == "netmax"


class TestNetMaxSpecifics:
    def test_monitor_publishes_and_workers_adopt(self, scenario, workload):
        result = run_trainer(
            "netmax", scenario, workload, quick_config(), monitor_period_s=5.0
        )
        stats = result.extras["monitor_stats"]
        assert stats.ticks >= 3
        assert stats.policies_published >= 1
        assert result.extras["policies_adopted"] >= 1
        assert "final_policy" in result.extras
        np.testing.assert_allclose(result.extras["final_policy"].sum(axis=1), 1.0)

    def test_non_adaptive_never_publishes(self, scenario, workload):
        result = run_trainer(
            "netmax", scenario, workload, quick_config(), adaptive=False
        )
        assert result.extras["monitor_stats"].ticks == 0
        assert result.extras["policies_adopted"] == 0

    def test_serial_slower_than_overlap(self, scenario, workload):
        # Without NIC contention C + N strictly dominates max(C, N).
        overlap = run_trainer(
            "netmax", scenario, workload, quick_config(),
            adaptive=False, flow_sharing=False,
        )
        serial = run_trainer(
            "netmax", scenario, workload, quick_config(),
            adaptive=False, overlap=False, flow_sharing=False,
        )
        assert (
            serial.costs.summary()["epoch_time"]
            > overlap.costs.summary()["epoch_time"]
        )

    def test_no_clipping_under_feasible_policies(self, scenario, workload):
        result = run_trainer("netmax", scenario, workload, quick_config())
        assert result.extras["clip_events"] == 0


class TestAllreduceSpecifics:
    def test_all_replicas_identical(self, scenario, workload):
        result = run_trainer("allreduce", scenario, workload, quick_config())
        params = result.final_params
        for worker in range(1, params.shape[0]):
            np.testing.assert_allclose(params[worker], params[0])

    def test_synchronous_equal_iteration_counts(self, scenario, workload):
        result = run_trainer("allreduce", scenario, workload, quick_config())
        assert result.global_steps % 4 == 0


class TestPSSpecifics:
    def test_ps_syn_replicas_identical(self, scenario, workload):
        result = run_trainer("ps-syn", scenario, workload, quick_config())
        for worker in range(1, 4):
            np.testing.assert_allclose(result.final_params[worker], result.final_params[0])

    def test_ps_asyn_colocated_workers_iterate_more(self, workload):
        # 4 workers over 2 servers; PS anchored at worker 0's server. Workers
        # on server 0 exchange over the fast local bus.
        scenario = heterogeneous_scenario(num_workers=4, seed=1, dynamic=False)
        trainer = create_trainer(
            "ps-asyn",
            workload.make_tasks(),
            scenario.topology,
            scenario.links,
            workload.profile,
            quick_config(),
            test_data=workload.test_data,
        )
        result = trainer.run()
        iterations = [trainer.tasks[i].iterations for i in range(4)]
        # Workers 0,1 share the PS server (layout (2,2)); they should iterate
        # strictly more than the remote workers 2,3.
        assert min(iterations[0], iterations[1]) > max(iterations[2], iterations[3])
        assert result.global_steps == sum(iterations)


class TestPragueSpecifics:
    def test_groups_formed(self, scenario, workload):
        trainer = create_trainer(
            "prague",
            workload.make_tasks(),
            scenario.topology,
            scenario.links,
            workload.profile,
            quick_config(),
            group_size=2,
        )
        trainer.run()
        assert trainer.groups_formed > 0
        # Groups may still be in flight when the time budget cuts the run.
        assert 0 <= trainer._active_groups <= trainer.groups_formed

    def test_group_size_validation(self, scenario, workload):
        with pytest.raises(ValueError, match="group_size"):
            create_trainer(
                "prague",
                workload.make_tasks(),
                scenario.topology,
                scenario.links,
                workload.profile,
                quick_config(),
                group_size=1,
            )

    def test_contention_slows_groups(self, scenario, workload):
        calm = run_trainer(
            "prague", scenario, workload, quick_config(), contention_factor=0.0
        )
        congested = run_trainer(
            "prague", scenario, workload, quick_config(), contention_factor=2.0
        )
        assert (
            congested.costs.summary()["communication_cost"]
            >= calm.costs.summary()["communication_cost"]
        )


class TestSAPSSpecifics:
    def test_fixed_subgraph_is_spanning_and_fast(self, workload):
        scenario = heterogeneous_scenario(num_workers=4, seed=1, dynamic=False)
        trainer = create_trainer(
            "saps",
            workload.make_tasks(),
            scenario.topology,
            scenario.links,
            workload.profile,
            quick_config(),
        )
        sub = trainer.fixed_subgraph
        assert sub.is_connected()
        assert len(sub.edges()) == 3  # spanning tree on 4 workers

    def test_extra_edges_densify(self, workload):
        scenario = heterogeneous_scenario(num_workers=4, seed=1, dynamic=False)
        trainer = create_trainer(
            "saps",
            workload.make_tasks(),
            scenario.topology,
            scenario.links,
            workload.profile,
            quick_config(),
            extra_edges=2,
        )
        assert len(trainer.fixed_subgraph.edges()) == 5


class TestADPSGDMonitorSpecifics:
    def test_uses_monitor_but_half_weights(self, scenario, workload):
        result = run_trainer(
            "adpsgd-monitor", scenario, workload, quick_config(), monitor_period_s=5.0
        )
        assert result.extras["monitor_stats"].policies_published >= 1

    def test_invalid_mixing_weight(self, scenario, workload):
        with pytest.raises(ValueError, match="mixing_weight"):
            run_trainer(
                "adpsgd-monitor", scenario, workload, quick_config(), mixing_weight=1.5
            )


class TestADPSGDSpecifics:
    def test_invalid_mixing_weight(self, scenario, workload):
        with pytest.raises(ValueError, match="mixing_weight"):
            run_trainer("adpsgd", scenario, workload, quick_config(), mixing_weight=0.0)

    def test_workers_reach_consensus_neighborhood(self, scenario, workload):
        result = run_trainer("adpsgd", scenario, workload, quick_config())
        # Gossip averaging keeps replicas close: consensus distance should be
        # tiny relative to parameter magnitude.
        scale = float(np.mean(np.sum(result.final_params**2, axis=1)))
        assert result.consensus_distance() < 0.05 * scale
