"""Trainer-level behavior of the compression axis.

Two promises matter here:

1. **Bit-identity of the default path.** A trainer handed the ``none`` op
   (or no op at all) runs the exact pre-compression code: identical final
   parameters, identical event schedule, zero draws from the compression
   RNG streams. This is the pin that lets the compression axis ship
   without a CACHE_VERSION bump.
2. **Lossy ops change both ledgers.** A lossy op shrinks the bytes the
   cost model charges (more iterations per simulated second) AND perturbs
   gossip pulls through the accuracy-impact hook -- every gossip trainer
   routes pulls through ``DecentralizedTrainer.pulled_params``.
"""

import numpy as np
import pytest

from repro.algorithms import TrainerConfig, create_trainer
from repro.experiments import (
    build_scenario,
    heterogeneous_scenario,
    make_workload,
    run_trainer,
)
from repro.network.compression import make_compression_op

GOSSIP_ALGORITHMS = ("adpsgd", "saps", "netmax", "adpsgd-monitor")


@pytest.fixture(scope="module")
def scenario():
    return heterogeneous_scenario(num_workers=4, seed=1)


@pytest.fixture(scope="module")
def workload():
    return make_workload(
        "mobilenet", "mnist", num_workers=4, batch_size=32, num_samples=512, seed=1
    )


def quick_config(**kwargs):
    defaults = dict(max_sim_time=20.0, eval_interval_s=5.0, seed=3)
    defaults.update(kwargs)
    return TrainerConfig(**defaults)


class TestNoneBitIdentity:
    @pytest.mark.parametrize("name", GOSSIP_ALGORITHMS)
    def test_none_op_is_bit_identical_to_no_op(self, name, scenario, workload):
        plain = run_trainer(name, scenario, workload, quick_config())
        none = run_trainer(
            name, scenario, workload, quick_config(),
            compression=make_compression_op("none"),
        )
        np.testing.assert_array_equal(plain.final_params, none.final_params)
        np.testing.assert_array_equal(
            plain.history.as_arrays()["train_loss"],
            none.history.as_arrays()["train_loss"],
        )
        assert plain.global_steps == none.global_steps
        assert plain.sim_time == none.sim_time

    def test_none_op_normalized_away(self, scenario, workload):
        """The constructor folds the identity op to None: no compression
        state, no RNG streams allocated."""
        trainer = create_trainer(
            "adpsgd", workload.make_tasks(), scenario.topology, scenario.links,
            workload.profile, quick_config(),
            compression=make_compression_op("none"),
        )
        assert trainer.compression is None
        assert trainer._compression_rngs is None
        assert trainer.message_bytes == workload.profile.message_bytes


class TestLossyOps:
    def test_topk_shrinks_bytes_and_changes_trajectory(self, scenario, workload):
        plain = run_trainer("adpsgd", scenario, workload, quick_config())
        compressed = run_trainer(
            "adpsgd", scenario, workload, quick_config(),
            compression=make_compression_op("topk", 0.1),
        )
        # Smaller messages -> cheaper transfers -> more iterations in the
        # same simulated horizon.
        assert compressed.global_steps > plain.global_steps
        assert not np.array_equal(plain.final_params, compressed.final_params)

    @pytest.mark.parametrize("name", GOSSIP_ALGORITHMS)
    def test_every_gossip_trainer_trains_under_compression(
        self, name, scenario, workload
    ):
        result = run_trainer(
            name, scenario, workload, quick_config(),
            compression=make_compression_op("topk", 0.25),
        )
        arrays = result.history.as_arrays()
        assert result.global_steps > 0
        assert arrays["train_loss"][-1] < arrays["train_loss"][0]

    def test_trainer_bytes_come_from_the_comm_model(self, scenario, workload):
        op = make_compression_op("qsgd", 8)
        trainer = create_trainer(
            "adpsgd", workload.make_tasks(), scenario.topology, scenario.links,
            workload.profile, quick_config(),
            compression=op,
        )
        assert trainer.message_bytes == op.compressed_bytes(workload.profile)
        assert trainer.message_bytes == trainer.comm.payload_bytes(workload.profile)
        assert trainer.message_bytes < workload.profile.message_bytes

    def test_synchronous_trainer_gets_bytes_effect_only(self, scenario, workload):
        """Sync baselines accept the op (smaller rounds) without the gossip
        noise hook -- they have no pulls to perturb."""
        plain = run_trainer("allreduce", scenario, workload, quick_config())
        compressed = run_trainer(
            "allreduce", scenario, workload, quick_config(),
            compression=make_compression_op("topk", 0.1),
        )
        assert compressed.global_steps > plain.global_steps

    def test_compression_noise_is_seed_deterministic(self, scenario, workload):
        kwargs = dict(compression=make_compression_op("topk", 0.1))
        a = run_trainer("adpsgd", scenario, workload, quick_config(), **kwargs)
        b = run_trainer("adpsgd", scenario, workload, quick_config(), **kwargs)
        np.testing.assert_array_equal(a.final_params, b.final_params)
        assert a.global_steps == b.global_steps


class TestScenarioThreading:
    def test_harness_threads_scenario_compression(self, workload):
        """build_scenario(compression=...) reaches the trainer without any
        explicit trainer_kwargs."""
        scenario = build_scenario(
            "heterogeneous", 4, 1, compression="topk", compression_param=0.1
        )
        assert scenario.name.endswith("-ctopk0.1")
        result = run_trainer("adpsgd", scenario, workload, quick_config())
        baseline = run_trainer(
            "adpsgd", build_scenario("heterogeneous", 4, 1), workload,
            quick_config(),
        )
        assert result.global_steps > baseline.global_steps

    def test_batched_backend_rejects_compression(self, scenario, workload):
        from repro.simulation.batched import BatchedSimulator

        trainer = create_trainer(
            "adpsgd", workload.make_tasks(), scenario.topology, scenario.links,
            workload.profile, quick_config(),
            compression=make_compression_op("topk", 0.1),
        )
        with pytest.raises(ValueError, match="compression"):
            BatchedSimulator([trainer])

    def test_batch_key_excludes_compressed_cells(self):
        from repro.experiments.executors import _batch_key
        from repro.experiments.sweeps import (
            RunSpec, ScenarioSpec, SweepSpec, WorkloadSpec,
        )

        def cell_for(scenario):
            return SweepSpec(
                algorithms=("adpsgd",), seeds=(0,), scenarios=(scenario,),
                workload=WorkloadSpec(num_samples=256),
                run=RunSpec(max_sim_time=5.0),
            ).cells()[0]

        plain = cell_for(ScenarioSpec("heterogeneous", 4))
        compressed = cell_for(ScenarioSpec(
            "heterogeneous", 4,
            params=(("compression", "topk"), ("compression_param", 0.1)),
        ))
        assert _batch_key(plain) is not None
        assert _batch_key(compressed) is None
