"""Regression pins for NetMax's monitor-coverage behavior.

PR 1 found that ``min_coverage=1.0`` makes the monitor's first publication
hostage to the slowest unprobed link (a coupon-collector tail measured in
slow-link round trips): on many seeds the monitor never published within
the run and NetMax sat on its uniform fallback, erasing its advantage.
``NetMaxTrainer`` therefore defaults ``monitor_min_coverage=0.9``. These
tests pin both the default and the cliff it protects against, so an
accidental revert fails loudly instead of silently degrading results.
"""

import inspect

import numpy as np

from repro.algorithms.base import TrainerConfig
from repro.algorithms.netmax import NetMaxTrainer
from repro.core.monitor import NetworkMonitor
from repro.experiments.scenarios import heterogeneous_scenario, make_workload
from repro.graph.topology import Topology


def make_trainer(**kwargs):
    scenario = heterogeneous_scenario(4, seed=0)
    workload = make_workload(
        "mobilenet", "mnist", num_workers=4, batch_size=32, num_samples=256, seed=0
    )
    config = TrainerConfig(max_sim_time=10.0, eval_interval_s=5.0, seed=0)
    return NetMaxTrainer(
        workload.make_tasks(),
        scenario.topology,
        scenario.links,
        workload.profile,
        config,
        **kwargs,
    )


class TestMinCoverageDefault:
    def test_constructor_default_is_0_9(self):
        """The signature default itself is pinned: changing it is a decision,
        not a drive-by."""
        signature = inspect.signature(NetMaxTrainer.__init__)
        assert signature.parameters["monitor_min_coverage"].default == 0.9

    def test_default_reaches_the_monitor(self):
        assert make_trainer().monitor.min_coverage == 0.9

    def test_override_still_respected(self):
        assert make_trainer(monitor_min_coverage=0.75).monitor.min_coverage == 0.75


class TestNeverPublishCliffAt1:
    """The behavior 0.9 protects against: at 1.0, one unprobed pair blocks
    publication forever (workers keep the uniform fallback)."""

    def probe_times(self, m=5, missing=((0, 4),)):
        topology = Topology.fully_connected(m)
        times = np.where(topology.adjacency, 1.0, np.nan)
        for a, b in missing:
            times[a, b] = np.nan
        return topology, times

    def test_single_missing_pair_blocks_at_full_coverage(self):
        topology, times = self.probe_times()
        monitor = NetworkMonitor(topology, min_coverage=1.0)
        for _ in range(3):  # stays blocked tick after tick
            assert monitor.tick(times, alpha=0.1) is None
        assert monitor.stats.policies_published == 0
        assert monitor.stats.skipped_insufficient_data == 3

    def test_same_matrix_publishes_at_0_9(self):
        topology, times = self.probe_times()
        monitor = NetworkMonitor(topology, min_coverage=0.9)
        result = monitor.tick(times, alpha=0.1)
        assert result is not None
        assert monitor.stats.policies_published == 1

    def test_trainer_at_1_0_never_adopts_on_sparse_coverage(self):
        """End-to-end shape of the cliff: with min_coverage forced back to
        1.0 and a monitor period short relative to slow links, the run ends
        with zero adopted policies while 0.9 adopts at least one."""
        strict = make_trainer(monitor_min_coverage=1.0, monitor_period_s=0.5)
        strict.run()
        relaxed = make_trainer(monitor_min_coverage=0.9, monitor_period_s=0.5)
        relaxed.run()
        assert relaxed.policies_adopted >= 1
        assert relaxed.monitor.stats.policies_published >= 1
        # The strict monitor may eventually publish once every pair has been
        # sampled; the regression is about the *gap* -- it must publish no
        # earlier than the relaxed one and skip more ticks waiting.
        assert (
            strict.monitor.stats.skipped_insufficient_data
            >= relaxed.monitor.stats.skipped_insufficient_data
        )
        assert strict.policies_adopted <= relaxed.policies_adopted


class TestPolicyScopeWiring:
    """The neighborhood-local solve mode and unprobed stance through the
    trainer: defaults pinned, kwargs reach the monitor, and local mode on a
    full graph with wide hops reproduces the global run bit for bit."""

    def test_defaults_pinned(self):
        signature = inspect.signature(NetMaxTrainer.__init__)
        assert signature.parameters["policy_scope"].default == "global"
        assert signature.parameters["policy_local_hops"].default == 2
        assert signature.parameters["monitor_unprobed"].default == "pessimistic"
        trainer = make_trainer()
        assert trainer.monitor.policy_scope == "global"
        assert trainer.monitor.unprobed == "pessimistic"

    def test_kwargs_reach_the_monitor(self):
        trainer = make_trainer(
            policy_scope="local", policy_local_hops=3,
            monitor_unprobed="optimistic",
        )
        assert trainer.monitor.policy_scope == "local"
        assert trainer.monitor.local_hops == 3
        assert trainer.monitor.unprobed == "optimistic"

    def _run_quadratic(self, **kwargs):
        from repro.experiments.scenarios import make_quadratic_workload

        num_workers = 6
        scenario = heterogeneous_scenario(num_workers, dynamic=False, seed=0)
        tasks, _, profile = make_quadratic_workload(num_workers, seed=0)
        config = TrainerConfig(
            max_sim_time=120.0, eval_interval_s=60.0, seed=0,
            max_epochs=500.0, iterations_per_epoch_hint=50,
        )
        trainer = NetMaxTrainer(
            tasks, scenario.topology, scenario.links, profile, config,
            monitor_period_s=30.0, policy_outer_rounds=4,
            policy_inner_rounds=4, **kwargs,
        )
        result = trainer.run()
        return trainer, result

    def test_local_full_graph_bit_identical_to_global(self):
        """On the full graph with hops >= diameter every ego solve is the
        global solve (shared cache signature), so the entire training
        trajectory -- policies, rho staging, final parameters -- matches."""
        global_trainer, global_result = self._run_quadratic()
        local_trainer, local_result = self._run_quadratic(
            policy_scope="local", policy_local_hops=6
        )
        assert global_trainer.monitor.stats.policies_published >= 1
        np.testing.assert_array_equal(
            global_result.final_params, local_result.final_params
        )
        assert global_result.history.train_losses == local_result.history.train_losses
        assert global_result.sim_time == local_result.sim_time
        assert global_trainer.policies_adopted == local_trainer.policies_adopted

    def test_local_mode_stages_per_worker_rho(self):
        trainer, _ = self._run_quadratic(
            policy_scope="local", policy_local_hops=1
        )
        result = trainer.monitor.last_result
        assert result is not None
        assert result.rho_per_worker is not None
        for i, state in enumerate(trainer.workers):
            assert state.rho == result.rho_per_worker[i]
