"""Smoke tests for the figure/table regeneration functions at tiny scale.

Each experiment function must run end-to-end, produce the paper's row
structure, and (where cheap to check) exhibit the paper's qualitative shape.
The full-scale versions live in benchmarks/.
"""

import numpy as np
import pytest

from repro.experiments import (
    figure3_iteration_time,
    figure5_epoch_time_heterogeneous,
    figure7_ablation,
    figure8_loss_vs_time_heterogeneous,
    figure18_mnist_noniid,
    table6_mobilenet_accuracy,
)
from repro.experiments.common import ExperimentOutput, Series


class TestCommonContainers:
    def test_series_validates_shapes(self):
        with pytest.raises(ValueError, match="shapes differ"):
            Series("x", np.arange(3), np.arange(4))

    def test_output_render_contains_id(self):
        out = ExperimentOutput("figX", "t", ["a"], [[1.0]])
        assert "[figX]" in out.render()

    def test_row_dict(self):
        out = ExperimentOutput("figX", "t", ["k", "v"], [["a", 1], ["b", 2]])
        assert out.row_dict()["a"] == ["a", 1]


class TestFigure3:
    def test_inter_slower_than_intra(self):
        out = figure3_iteration_time()
        for row in out.rows:
            model, intra, inter, ratio = row
            assert inter > intra
            assert ratio == pytest.approx(inter / intra)

    def test_vgg_ratio_larger_than_resnet(self):
        rows = figure3_iteration_time().row_dict()
        assert rows["vgg19"][3] > rows["resnet18"][3]


class TestFigure5:
    @pytest.mark.slow
    def test_structure_and_shape(self):
        out = figure5_epoch_time_heterogeneous(
            models=("resnet18",), num_samples=768, max_sim_time=60.0
        )
        assert len(out.rows) == 4
        by_algo = {row[1]: row for row in out.rows}
        # Computation cost roughly equal across algorithms (same model/GPU).
        comps = [row[2] for row in out.rows]
        assert max(comps) / min(comps) < 1.5
        # Decomposition sums.
        for row in out.rows:
            assert row[4] == pytest.approx(row[2] + row[3], rel=1e-6)
        assert by_algo["netmax"][3] >= 0


class TestFigure7:
    @pytest.mark.slow
    def test_four_settings_per_model(self):
        out = figure7_ablation(models=("resnet18",), num_samples=768, max_sim_time=60.0)
        assert len(out.rows) == 4
        settings = {row[1] for row in out.rows}
        assert settings == {
            "serial+uniform", "parallel+uniform", "serial+adaptive", "parallel+adaptive"
        }


class TestFigure8:
    @pytest.mark.slow
    def test_series_present_for_each_algorithm(self):
        out = figure8_loss_vs_time_heterogeneous(num_samples=768, max_sim_time=60.0)
        labels = {s.label for s in out.series}
        assert labels == {"prague", "allreduce", "adpsgd", "netmax"}
        for series in out.series:
            assert series.y[-1] < series.y[0]  # loss decreased


class TestFigure18:
    @pytest.mark.slow
    def test_rows_and_accuracy(self):
        out = figure18_mnist_noniid(num_samples=768, max_sim_time=40.0)
        assert len(out.rows) == 4
        for row in out.rows:
            assert 0.0 <= row[2] <= 1.0  # test accuracy column


class TestScalabilityGuard:
    def test_requires_allreduce_baseline(self):
        from repro.experiments import figure10_scalability_heterogeneous

        with pytest.raises(ValueError, match="allreduce"):
            figure10_scalability_heterogeneous(
                worker_counts=(4,), algorithms=("netmax", "adpsgd")
            )


class TestTable6:
    @pytest.mark.slow
    def test_six_algorithms(self):
        out = table6_mobilenet_accuracy(num_samples=1024, max_sim_time=60.0)
        assert len(out.rows) == 6
        names = {row[0] for row in out.rows}
        assert "ps-syn" in names and "ps-asyn" in names


class TestFigureScalability:
    def test_small_sweep_structure(self):
        from repro.experiments import figure_scalability

        out = figure_scalability(worker_counts=(8, 16), max_sim_time=5.0)
        # adpsgd and netmax-local both run at these sizes -> 4 rows.
        assert len(out.rows) == 4
        labels = {row[0] for row in out.rows}
        assert labels == {"adpsgd", "netmax-local"}
        for row in out.rows:
            events_per_s = row[3]
            assert events_per_s > 0
        by_label = {series.label: series for series in out.series}
        assert list(by_label["adpsgd"].x) == [8.0, 16.0]

    def test_netmax_capped_above_its_max(self):
        from repro.experiments.figures_scaling import (
            NETMAX_LOCAL_MAX_WORKERS,
            figure_scalability,
        )

        out = figure_scalability(
            worker_counts=(NETMAX_LOCAL_MAX_WORKERS * 2,), max_sim_time=2.0
        )
        assert {row[0] for row in out.rows} == {"adpsgd"}
