"""Failure-path and equivalence tests for the pluggable sweep executors.

The file-queue broker's whole contract is exercised here: bit-identity with
the inline/process backends through the shared cache, resume-only-missing,
stale-lease reclaim (simulated *and* via a real SIGKILLed worker), retry
exhaustion surfacing a clear error, and corrupt-result quarantine.
"""

import multiprocessing
import os
import time

import numpy as np
import pytest

from hypothesis import given, settings, strategies as st

from repro.experiments.executors import (
    BatchedExecutor,
    InlineExecutor,
    ProcessExecutor,
    QueueExecutor,
    ResultCache,
    WorkQueue,
    make_executor,
    parallel_map,
    partition_batchable,
    run_queue_worker,
)
from repro.experiments.executors import QueueCellError
from repro.experiments.sweeps import (
    RunSpec,
    ScenarioSpec,
    SweepCell,
    WorkloadSpec,
    aggregate_sweep,
    run_sweep,
)
# Same-directory import (pytest prepend mode; the test tree is not a
# package): the sweep tests own the tiny-spec helpers.
from test_sweeps import (
    assert_results_identical,
    metric_rows,
    tiny_spec,
)

# Fast poll/reclaim settings so the failure paths run in test time.
FAST = dict(lease_timeout_s=5.0, poll_interval_s=0.02)


def queue_executor(tmp_path, **overrides) -> QueueExecutor:
    options = dict(FAST, num_workers=1)
    options.update(overrides)
    return QueueExecutor(str(tmp_path / "queue"), **options)


class TestMakeExecutor:
    def test_backend_names(self):
        assert make_executor("inline").name == "inline"
        assert make_executor("batched").name == "batched"
        assert make_executor("process", parallel=3).name == "process"
        queue = make_executor("queue", queue_dir="/tmp/q", num_queue_workers=2)
        assert queue.name == "queue"
        assert queue.num_workers == 2

    def test_queue_requires_directory(self):
        with pytest.raises(ValueError, match="queue directory"):
            make_executor("queue")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep backend"):
            make_executor("slurm")

    def test_explicit_parallel_one_is_honored(self):
        """--backend process --parallel 1 must not silently fan out to 2
        workers (memory-capped hosts rely on the exact count)."""
        assert make_executor("process", parallel=1).max_workers == 1
        assert make_executor("process", parallel=4).max_workers == 4
        assert make_executor("process").max_workers == 2  # unspecified

    def test_invalid_queue_settings_rejected(self):
        with pytest.raises(ValueError, match="num_workers"):
            QueueExecutor("/tmp/q", num_workers=-1)
        with pytest.raises(ValueError, match="lease_timeout_s"):
            QueueExecutor("/tmp/q", lease_timeout_s=0.0)
        with pytest.raises(ValueError, match="max_attempts"):
            QueueExecutor("/tmp/q", max_attempts=0)


class TestBackendEquivalence:
    """queue == process == inline, bit for bit (the tentpole criterion)."""

    def test_all_backends_bit_identical(self, tmp_path):
        spec = tiny_spec()
        inline = run_sweep(spec, executor=InlineExecutor())
        process = run_sweep(spec, executor=ProcessExecutor(2))
        queued = run_sweep(spec, executor=queue_executor(tmp_path, num_workers=2))
        assert inline.backend == "inline"
        assert process.backend == "process"
        assert queued.backend == "queue"
        assert queued.cells_executed == len(spec.cells())
        for a, b, c in zip(inline.outcomes, process.outcomes, queued.outcomes):
            assert a.cell == b.cell == c.cell
            assert_results_identical(a.result, b.result)
            assert_results_identical(a.result, c.result)
        assert (
            metric_rows(aggregate_sweep(inline))
            == metric_rows(aggregate_sweep(process))
            == metric_rows(aggregate_sweep(queued))
        )

    def test_queue_results_land_in_shared_cache(self, tmp_path):
        """An explicit --cache-dir is honored, so a later inline run over
        the same grid is served entirely from the queue run's results."""
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0,))
        cache_dir = str(tmp_path / "cache")
        queued = run_sweep(
            spec, cache_dir=cache_dir, executor=queue_executor(tmp_path)
        )
        followup = run_sweep(spec, cache_dir=cache_dir)
        assert followup.cells_from_cache == 1
        assert_results_identical(
            queued.outcomes[0].result, followup.outcomes[0].result
        )

    def test_queue_telemetry_recorded(self, tmp_path):
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0,))
        queued = run_sweep(spec, executor=queue_executor(tmp_path))
        outcome = queued.outcomes[0]
        assert outcome.runtime_s > 0.0
        assert outcome.attempts == 1
        assert outcome.worker  # hostname-pid of whichever worker ran it
        meta = WorkQueue(str(tmp_path / "queue")).read_meta(
            outcome.cell.cache_key()
        )
        assert meta["label"] == outcome.cell.label()
        assert meta["runtime_s"] == outcome.runtime_s


class TestBatchedBackend:
    """The lockstep SoA backend: bit-identical, cache-compatible, and its
    partitioner never co-schedules incompatible cells."""

    def test_batched_bit_identical_to_inline(self):
        """tiny_spec mixes a batchable algorithm (adpsgd) with a
        non-batchable one (allreduce), so this exercises both the lockstep
        engine and the per-cell fall-through in one sweep."""
        spec = tiny_spec()
        batches, singles = partition_batchable(spec.cells())
        assert batches and singles  # both paths genuinely exercised
        inline = run_sweep(spec, executor=InlineExecutor())
        batched = run_sweep(spec, executor=BatchedExecutor())
        assert batched.backend == "batched"
        for a, b in zip(inline.outcomes, batched.outcomes):
            assert a.cell == b.cell
            assert_results_identical(a.result, b.result)
        assert metric_rows(aggregate_sweep(inline)) == metric_rows(
            aggregate_sweep(batched)
        )

    def test_batched_results_cache_and_rerun_identical(self, tmp_path):
        spec = tiny_spec()
        cache_dir = str(tmp_path / "cache")
        fresh = run_sweep(spec, cache_dir=cache_dir, executor=BatchedExecutor())
        assert fresh.cells_executed == len(spec.cells())
        rerun = run_sweep(spec, cache_dir=cache_dir, executor=BatchedExecutor())
        assert rerun.cells_from_cache == len(spec.cells())
        for a, b in zip(fresh.outcomes, rerun.outcomes):
            assert_results_identical(a.result, b.result)

    def test_runtime_telemetry_is_additive(self):
        outcome_runtimes = [
            outcome.runtime_s
            for outcome in run_sweep(
                tiny_spec(), executor=BatchedExecutor()
            ).outcomes
        ]
        assert all(runtime > 0.0 for runtime in outcome_runtimes)


# Cell-spec axes for the partitioning property: batchable and non-batchable
# algorithms, two worker counts, and the three compatibility hazards the
# partitioner must keep out of batches (nothing / time-varying edges /
# churn). ScenarioSpec construction validates params, so draws build real
# specs, never toy stand-ins.
_ALGORITHMS = ("adpsgd", "saps", "allreduce", "netmax")
_HAZARDS = ("plain", "dynamic-edges", "churn")


def _property_cell(algorithm: str, workers: int, hazard: str) -> SweepCell:
    if hazard == "churn":
        scenario = ScenarioSpec("churn", workers)
    elif hazard == "dynamic-edges":
        scenario = ScenarioSpec(
            "heterogeneous", workers, params=(("edge_failures", 2),)
        )
    else:
        scenario = ScenarioSpec("heterogeneous", workers)
    return SweepCell(
        algorithm=algorithm,
        seed=0,
        scenario=scenario,
        workload=WorkloadSpec(),
        run=RunSpec(),
    )


class TestBatchedPartitioning:
    @given(
        draws=st.lists(
            st.tuples(
                st.sampled_from(_ALGORITHMS),
                st.sampled_from((4, 8)),
                st.sampled_from(_HAZARDS),
            ),
            max_size=12,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_partition_is_a_disjoint_cover_of_compatible_cells(self, draws):
        from repro.algorithms.registry import TRAINER_REGISTRY

        cells = [_property_cell(*draw) for draw in draws]
        batches, singles = partition_batchable(cells)
        # Exactly one home per cell: the executor fills its output slots
        # from this partition, so overlap or omission would corrupt results.
        covered = sorted(index for batch in batches for index in batch)
        assert sorted(covered + singles) == list(range(len(cells)))
        assert len(set(covered) | set(singles)) == len(cells)
        for batch in batches:
            assert len(batch) >= 2  # singleton batches fall through
            members = [cells[index] for index in batch]
            # Never co-scheduled: a batch is uniform in worker count and
            # contains only batchable cells (opted-in trainer, no churn
            # family, no time-varying topology).
            assert len({cell.scenario.num_workers for cell in members}) == 1
            for cell in members:
                assert TRAINER_REGISTRY[cell.algorithm].supports_batched
                assert cell.scenario.kind != "churn"
                assert not cell.scenario.has_dynamic_edges()

    def test_incompatible_cells_fall_through(self):
        cells = [
            _property_cell("adpsgd", 4, "plain"),
            _property_cell("adpsgd", 4, "churn"),
            _property_cell("adpsgd", 4, "dynamic-edges"),
            _property_cell("allreduce", 4, "plain"),
            _property_cell("adpsgd", 8, "plain"),  # lone worker count
            _property_cell("saps", 4, "plain"),
        ]
        batches, singles = partition_batchable(cells)
        # adpsgd and saps share the 4-worker batch; everything else is
        # hazardous, opted out, or a singleton compatibility class.
        assert batches == [[0, 5]]
        assert singles == [1, 2, 3, 4]


class TestForce:
    def test_force_reexecutes_through_queue_backend(self, tmp_path):
        """force=True must re-execute through *every* backend: the queue
        broker treats an existing result file as "done", so the stale entry
        is evicted up front (regression: force used to be a silent no-op
        here, serving old results labeled as freshly executed)."""
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0,))
        (cell,) = spec.cells()
        first = run_sweep(spec, executor=queue_executor(tmp_path))
        results_dir = str(tmp_path / "queue" / "results")
        result_path = ResultCache(results_dir).path(cell.cache_key())
        stamp_before = os.stat(result_path).st_mtime_ns

        forced = run_sweep(
            spec, executor=queue_executor(tmp_path), force=True
        )
        assert forced.cells_executed == 1
        assert forced.cells_from_cache == 0
        assert os.stat(result_path).st_mtime_ns > stamp_before
        assert_results_identical(first.outcomes[0].result,
                                 forced.outcomes[0].result)


class TestQueueResume:
    def test_restarted_sweep_executes_only_missing_cells(self, tmp_path):
        spec = tiny_spec()
        first = run_sweep(spec, executor=queue_executor(tmp_path, num_workers=2))
        assert first.cells_executed == 4

        results_dir = str(tmp_path / "queue" / "results")
        victim = first.outcomes[2].cell.cache_key()
        os.unlink(ResultCache(results_dir).path(victim))

        resumed = run_sweep(spec, executor=queue_executor(tmp_path))
        assert resumed.cells_executed == 1
        assert resumed.cells_from_cache == 3
        for a, b in zip(first.outcomes, resumed.outcomes):
            assert_results_identical(a.result, b.result)


class TestStaleLeaseReclaim:
    def test_reclaim_simulated_dead_worker(self, tmp_path):
        """A lease whose heartbeat went stale returns to the task pool with
        the attempt counter bumped, and the cell still executes."""
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0,))
        (cell,) = spec.cells()
        queue = WorkQueue(str(tmp_path / "queue"))
        queue.write_config(
            cache_dir=queue.default_results_dir(),
            max_attempts=3,
            lease_timeout_s=0.2,
            run_id="test-run",
        )
        assert queue.enqueue(cell)
        claim = queue.claim()  # "worker" claims, then dies: no heartbeat
        assert claim is not None and queue.pending_tasks() == []

        # Staleness needs an observation window: the first call records the
        # heartbeat counter, and only a counter unchanged across a full
        # lease timeout is stale (never a wall-clock/mtime comparison).
        assert queue.reclaim_stale(lease_timeout_s=0.2, max_attempts=3) == 0
        time.sleep(0.3)
        assert queue.reclaim_stale(lease_timeout_s=0.2, max_attempts=3) == 1
        (task,) = queue.pending_tasks()
        assert task.key == cell.cache_key()
        assert task.attempt == 2  # the dead worker spent one attempt
        assert queue.active_leases() == []

        summary = run_queue_worker(
            str(tmp_path / "queue"), poll_interval_s=0.02, drain_timeout_s=0.2
        )
        assert summary.executed == 1
        result = ResultCache(queue.default_results_dir()).load(cell.cache_key())
        assert_results_identical(result, cell.execute())

    def test_reclaim_on_final_attempt_fails_terminally(self, tmp_path):
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0,))
        (cell,) = spec.cells()
        queue = WorkQueue(str(tmp_path / "queue"))
        assert queue.enqueue(cell, attempt=3)
        assert queue.claim() is not None
        assert queue.reclaim_stale(lease_timeout_s=0.2, max_attempts=3) == 0
        time.sleep(0.3)
        assert queue.reclaim_stale(lease_timeout_s=0.2, max_attempts=3) == 1
        assert queue.pending_tasks() == []
        failure = queue.read_failure(cell.cache_key())
        assert "presumed dead" in failure["error"]
        assert failure["attempts"] == 3

    def test_sigkilled_worker_is_reclaimed_end_to_end(self, tmp_path):
        """The real thing: a worker process is SIGKILLed mid-cell; the
        coordinator-side reclaim makes the cell claimable again and a second
        worker finishes it, bit-identically to a fresh execution."""
        spec = tiny_spec(
            algorithms=("adpsgd",),
            seeds=(0,),
            run=RunSpec(max_sim_time=600.0, eval_interval_s=60.0),
        )
        (cell,) = spec.cells()
        queue_dir = str(tmp_path / "queue")
        queue = WorkQueue(queue_dir)
        queue.write_config(
            cache_dir=queue.default_results_dir(),
            max_attempts=3,
            lease_timeout_s=0.5,
            run_id="test-run",
        )
        assert queue.enqueue(cell)

        worker = multiprocessing.Process(
            target=run_queue_worker, args=(queue_dir,), daemon=True
        )
        worker.start()
        deadline = time.monotonic() + 60.0
        while not queue.active_leases() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert queue.active_leases(), "worker never claimed the cell"
        worker.kill()  # SIGKILL: no cleanup, the lease heartbeat just stops
        worker.join(timeout=30.0)
        cache = ResultCache(queue.default_results_dir())
        assert cache.load(cell.cache_key()) is None, (
            "cell finished before the kill; make the cell slower"
        )

        # First call records the frozen heartbeat counter; the second, after
        # a full lease window with no beats, declares the worker dead.
        assert queue.reclaim_stale(lease_timeout_s=0.5, max_attempts=3) == 0
        time.sleep(0.7)
        assert queue.reclaim_stale(lease_timeout_s=0.5, max_attempts=3) == 1
        summary = run_queue_worker(
            queue_dir, poll_interval_s=0.02, drain_timeout_s=0.2
        )
        assert summary.executed == 1
        assert_results_identical(cache.load(cell.cache_key()), cell.execute())

    def test_reclaim_resets_the_drain_timer(self, tmp_path):
        """A worker that reclaims a dead peer's lease must stay to execute
        it rather than draining out on an already-expired idle timer
        (regression: reclaim-then-exit used to strand the requeued task).

        The worker spends most of its drain window idle-watching the dead
        lease (staleness requires a counter frozen across a full lease
        timeout), so by the time the reclaim fires the idle timer is nearly
        spent -- only the reset lets it claim and execute the requeued cell.
        """
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0,))
        (cell,) = spec.cells()
        queue = WorkQueue(str(tmp_path / "queue"))
        queue.write_config(
            cache_dir=queue.default_results_dir(),
            max_attempts=3,
            lease_timeout_s=0.2,
            run_id="test-run",
        )
        queue.enqueue(cell)
        claim = queue.claim()  # dead peer: claims, then never heartbeats
        assert claim is not None

        summary = run_queue_worker(
            str(tmp_path / "queue"), poll_interval_s=0.02, drain_timeout_s=0.5
        )
        assert summary.reclaimed == 1
        assert summary.executed == 1
        result = ResultCache(queue.default_results_dir()).load(cell.cache_key())
        assert result is not None

    def test_heartbeat_keeps_slow_cells_alive(self, tmp_path):
        """A lease timeout shorter than the cell runtime must NOT cause
        spurious retries: the executing worker's heartbeat keeps renewing
        the lease, so the cell completes on attempt 1."""
        spec = tiny_spec(
            algorithms=("adpsgd",),
            seeds=(0,),
            run=RunSpec(max_sim_time=300.0, eval_interval_s=60.0),
        )
        queued = run_sweep(
            spec,
            executor=queue_executor(tmp_path, lease_timeout_s=1.0),
        )
        assert queued.outcomes[0].attempts == 1


class TestRetryExhaustion:
    def test_exhausted_budget_surfaces_clear_error(self, tmp_path):
        """A cell that fails every attempt fails the sweep with the cell
        label, the attempt count, and the underlying error text."""
        spec = tiny_spec(algorithms=("nonexistent",), seeds=(0,))
        with pytest.raises(QueueCellError) as error:
            run_sweep(
                spec, executor=queue_executor(tmp_path, max_attempts=2)
            )
        message = str(error.value)
        assert "nonexistent/s0" in message
        assert "unknown algorithm" in message
        assert "2 attempt(s)" in message
        failure = WorkQueue(str(tmp_path / "queue")).read_failure(
            spec.cells()[0].cache_key()
        )
        assert failure["attempts"] == 2

    def test_rerun_after_failure_retries_the_cell(self, tmp_path):
        """A restarted sweep clears its cells' terminal-failure records, so
        a fixed environment can finish a previously failing grid."""
        bad = tiny_spec(algorithms=("nonexistent",), seeds=(0,))
        executor = queue_executor(tmp_path, max_attempts=1)
        with pytest.raises(QueueCellError):
            run_sweep(bad, executor=executor)
        # The retry of the same grid fails again (the algorithm is still
        # unknown) -- but it *re-attempts* rather than replaying the stale
        # failure record instantly.
        with pytest.raises(QueueCellError, match="unknown algorithm"):
            run_sweep(bad, executor=queue_executor(tmp_path, max_attempts=1))

    def test_good_cells_complete_despite_failing_sibling(self, tmp_path):
        """The failure is per-cell: completed siblings stay in the cache, so
        only the bad cell is missing afterwards."""
        spec = tiny_spec(algorithms=("adpsgd", "nonexistent"), seeds=(0,))
        cells = spec.cells()
        with pytest.raises(QueueCellError):
            run_sweep(spec, executor=queue_executor(tmp_path, max_attempts=1))
        cache = ResultCache(str(tmp_path / "queue" / "results"))
        good = [c for c in cells if c.algorithm == "adpsgd"]
        assert all(cache.load(c.cache_key()) is not None for c in good)


class TestQuarantine:
    def corrupt(self, cache: ResultCache, key: str) -> None:
        with open(cache.path(key), "wb") as handle:
            handle.write(b"\x80\x04 definitely not a result pickle")

    def test_corrupt_entry_quarantined_and_reexecuted(self, tmp_path):
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0,))
        cache_dir = str(tmp_path / "cache")
        first = run_sweep(spec, cache_dir=cache_dir)
        key = spec.cells()[0].cache_key()
        cache = ResultCache(cache_dir)
        self.corrupt(cache, key)

        again = run_sweep(spec, cache_dir=cache_dir)
        assert again.cells_executed == 1 and again.cells_from_cache == 0
        assert_results_identical(first.outcomes[0].result,
                                 again.outcomes[0].result)
        quarantined = [entry for entry in os.listdir(cache.quarantine_dir())
                       if entry.endswith(".pkl")]
        assert len(quarantined) == 1 and quarantined[0].startswith(key)
        # The "why" lands next to the quarantined bytes for forensics.
        with open(os.path.join(cache.quarantine_dir(),
                               f"{quarantined[0]}.reason.txt")) as handle:
            assert handle.read().strip()
        # The re-executed (clean) entry serves the next run from cache.
        assert run_sweep(spec, cache_dir=cache_dir).cells_from_cache == 1

    def test_truncated_entry_quarantined(self, tmp_path):
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0,))
        cache_dir = str(tmp_path / "cache")
        run_sweep(spec, cache_dir=cache_dir)
        key = spec.cells()[0].cache_key()
        cache = ResultCache(cache_dir)
        with open(cache.path(key), "r+b") as handle:  # truncate mid-pickle
            handle.truncate(64)
        assert cache.load(key) is None
        assert os.listdir(cache.quarantine_dir())
        assert not os.path.exists(cache.path(key))

    def test_quarantine_through_the_queue_backend(self, tmp_path):
        """A corrupt result in the queue's results store is quarantined by
        the restarted coordinator and the cell re-executes."""
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0, 1))
        first = run_sweep(spec, executor=queue_executor(tmp_path))
        results_dir = str(tmp_path / "queue" / "results")
        cache = ResultCache(results_dir)
        key = spec.cells()[1].cache_key()
        self.corrupt(cache, key)

        resumed = run_sweep(spec, executor=queue_executor(tmp_path))
        assert resumed.cells_executed == 1
        assert resumed.cells_from_cache == 1
        for a, b in zip(first.outcomes, resumed.outcomes):
            assert_results_identical(a.result, b.result)
        assert os.listdir(cache.quarantine_dir())


class TestWorkQueuePrimitives:
    def test_claim_is_exclusive(self, tmp_path):
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0,))
        (cell,) = spec.cells()
        queue = WorkQueue(str(tmp_path / "queue"))
        assert queue.enqueue(cell)
        assert not queue.enqueue(cell)  # already queued: dedup
        assert queue.claim() is not None
        assert queue.claim() is None  # second claimant loses
        assert not queue.enqueue(cell)  # leased: still dedup

    def test_unreadable_task_spec_fails_terminally_not_the_worker(self, tmp_path):
        """Garbage bytes in tasks/ must become a failed/ record -- never an
        uncaught exception that serially crashes the worker fleet."""
        queue = WorkQueue(str(tmp_path / "queue"))
        queue.write_config(
            cache_dir=queue.default_results_dir(),
            max_attempts=3, lease_timeout_s=30.0, run_id="test-run",
        )
        bad = os.path.join(queue.tasks_dir, "deadbeef" * 8 + ".a1.task")
        with open(bad, "wb") as handle:
            handle.write(b"\x80\x04 not a sweep cell")
        summary = run_queue_worker(
            str(tmp_path / "queue"), poll_interval_s=0.02, drain_timeout_s=0.2
        )
        assert summary.executed == 0
        failure = queue.read_failure("deadbeef" * 8)
        assert "unreadable task spec" in failure["error"]
        assert queue.pending_tasks() == [] and queue.active_leases() == []

    def test_collect_reports_unreadable_results_for_reexecution(self, tmp_path):
        """An exists-but-unreadable result at collection time is returned
        as re-executable, not raised as a hard error (the coordinator
        re-enqueues those cells while its workers are still alive)."""
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0, 1))
        cells = spec.cells()
        keys = [cell.cache_key() for cell in cells]
        executor = queue_executor(tmp_path)
        run_sweep(spec, executor=executor)
        queue = WorkQueue(str(tmp_path / "queue"))
        cache = ResultCache(queue.default_results_dir())
        with open(cache.path(keys[1]), "wb") as handle:
            handle.write(b"\x80\x04 torn result bytes")
        executions, unreadable = executor._collect(queue, cache, cells, keys)
        assert unreadable == [1]
        assert executions[0] is not None and executions[1] is None
        # load() quarantined the torn entry, so the waiting loop's
        # exists() check now sees the cell as missing -> re-executed.
        assert not os.path.exists(cache.path(keys[1]))

    def test_worker_skips_already_completed_cells(self, tmp_path):
        """A cell whose result landed between enqueue and claim is released
        without re-execution (the kill-resume fast path)."""
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0,))
        (cell,) = spec.cells()
        queue = WorkQueue(str(tmp_path / "queue"))
        queue.write_config(
            cache_dir=queue.default_results_dir(),
            max_attempts=3,
            lease_timeout_s=30.0,
            run_id="test-run",
        )
        ResultCache(queue.default_results_dir()).store(
            cell.cache_key(), cell.execute()
        )
        queue.enqueue(cell)
        summary = run_queue_worker(
            str(tmp_path / "queue"), poll_interval_s=0.02, drain_timeout_s=0.2
        )
        assert summary.executed == 0
        assert summary.skipped == 1

    def test_worker_without_config_drains_out(self, tmp_path):
        summary = run_queue_worker(
            str(tmp_path / "queue"), poll_interval_s=0.02, drain_timeout_s=0.1
        )
        assert summary.executed == 0

    def test_stop_marker_ends_workers_immediately(self, tmp_path):
        """A STOP that *appears during the worker's lifetime* ends it long
        before the drain timeout (the local-worker shutdown path)."""
        import threading

        queue = WorkQueue(str(tmp_path / "queue"))
        queue.write_config(
            cache_dir=queue.default_results_dir(),
            max_attempts=3, lease_timeout_s=30.0, run_id="test-run",
        )
        timer = threading.Timer(0.3, queue.signal_stop, args=("test-run",))
        timer.start()
        start = time.monotonic()
        try:
            summary = run_queue_worker(
                str(tmp_path / "queue"), poll_interval_s=0.02,
                drain_timeout_s=30.0,
            )
        finally:
            timer.cancel()
        assert summary.executed == 0
        assert time.monotonic() - start < 5.0

    def test_stale_stop_marker_from_previous_sweep_is_ignored(self, tmp_path):
        """A reused queue directory keeps the previous sweep's STOP marker;
        a worker joining the *next* sweep generation must work through the
        queue rather than exiting on the stale marker (regression: workers
        that raced ahead of the coordinator used to quit instantly)."""
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0,))
        (cell,) = spec.cells()
        queue = WorkQueue(str(tmp_path / "queue"))
        queue.signal_stop("previous-run")  # leftover from an earlier sweep
        queue.write_config(
            cache_dir=queue.default_results_dir(),
            max_attempts=3, lease_timeout_s=30.0, run_id="next-run",
        )
        queue.enqueue(cell)
        summary = run_queue_worker(
            str(tmp_path / "queue"), poll_interval_s=0.02, drain_timeout_s=0.2
        )
        assert summary.executed == 1
        # ...while the marker API reports the generation it stops.
        queue.signal_stop("next-run")
        assert queue.stop_marker_id() == "next-run"

    def test_coordinator_restart_clears_previous_stop(self, tmp_path):
        """End to end on a reused queue dir: the second sweep (new run_id)
        completes with local workers despite the first sweep's STOP."""
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0,))
        first = run_sweep(spec, executor=queue_executor(tmp_path))
        assert os.path.exists(WorkQueue(str(tmp_path / "queue")).stop_path)
        more = tiny_spec(algorithms=("adpsgd",), seeds=(1,))
        second = run_sweep(more, executor=queue_executor(tmp_path))
        assert second.cells_executed == 1
        assert_results_identical(
            second.outcomes[0].result, more.cells()[0].execute()
        )
        assert first.outcomes[0].cell != second.outcomes[0].cell


class TestProgressWiring:
    def test_queue_progress_messages(self, tmp_path):
        messages = []
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0,))
        executor = queue_executor(tmp_path, progress=messages.append)
        run_sweep(spec, executor=executor)
        assert any("enqueued" in message for message in messages)


def test_parallel_map_reexported():
    """Harness + figures import parallel_map from sweeps; it must keep
    working from both homes after the executor split."""
    from repro.experiments.sweeps import parallel_map as from_sweeps

    assert from_sweeps is parallel_map
    assert parallel_map(str, [1, 2], parallel=0) == ["1", "2"]


def test_cell_time_columns_share_the_nan_renderer():
    """A NaN telemetry column renders '-' like every other NaN metric."""
    sweep = run_sweep(tiny_spec(algorithms=("adpsgd",), seeds=(0,)))
    output = aggregate_sweep(sweep)
    rendered = output.render()
    assert "cell_time_mean" in rendered
    assert np.isfinite(output.rows[0][9])
