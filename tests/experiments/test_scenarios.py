"""Unit tests for scenario and workload builders."""

import numpy as np
import pytest

from repro.experiments.scenarios import (
    heterogeneous_scenario,
    homogeneous_scenario,
    make_quadratic_workload,
    make_workload,
    multi_cloud_scenario,
)
from repro.network.links import ClusterLinks, DynamicSlowdownLinks, StaticLinks


class TestScenarios:
    def test_heterogeneous_default_is_dynamic(self):
        scenario = heterogeneous_scenario(8)
        assert isinstance(scenario.links, DynamicSlowdownLinks)
        assert scenario.num_workers == 8
        assert scenario.topology.is_connected()

    def test_heterogeneous_static_option(self):
        scenario = heterogeneous_scenario(4, dynamic=False)
        # The implicit O(N)-state form; bit-identical to the dense
        # StaticLinks.from_cluster it replaced (pinned in the link suite).
        assert isinstance(scenario.links, ClusterLinks)
        assert not isinstance(scenario.links, StaticLinks)

    def test_heterogeneous_has_two_link_classes(self):
        scenario = heterogeneous_scenario(8, dynamic=False)
        matrix = scenario.links.bandwidth_matrix(0.0)
        off = ~np.eye(8, dtype=bool)
        assert len(np.unique(matrix[off])) == 2  # intra vs inter

    def test_homogeneous_uniform_links(self):
        scenario = homogeneous_scenario(6)
        matrix = scenario.links.bandwidth_matrix(0.0)
        off = ~np.eye(6, dtype=bool)
        assert len(np.unique(matrix[off])) == 1

    def test_multi_cloud_six_workers(self):
        scenario = multi_cloud_scenario()
        assert scenario.num_workers == 6


class TestMakeWorkload:
    def test_uniform_default(self):
        workload = make_workload(num_workers=4, num_samples=512, seed=0)
        assert workload.num_workers == 4
        assert len(set(workload.batch_sizes)) == 1
        assert workload.test_data is not None

    def test_segment_batch_scaling(self):
        workload = make_workload(
            num_workers=4, num_samples=512, partition="segments",
            segments_per_worker=[1, 1, 2, 1], batch_size=16, seed=0,
        )
        assert workload.batch_sizes == [16, 16, 32, 16]
        assert len(workload.shards[2]) > len(workload.shards[0])

    def test_drop_labels_partition(self):
        workload = make_workload(
            model="mobilenet", dataset="mnist", num_workers=2, num_samples=512,
            partition="drop-labels", lost_labels=[(0, 1), (2, 3)], seed=0,
        )
        assert not np.isin(workload.shards[0].labels, [0, 1]).any()

    def test_tasks_start_identical(self):
        workload = make_workload(num_workers=3, num_samples=512, seed=0)
        tasks = workload.make_tasks()
        for task in tasks[1:]:
            np.testing.assert_array_equal(
                task.model.get_params(), tasks[0].model.get_params()
            )

    def test_make_tasks_independent_copies(self):
        workload = make_workload(num_workers=2, num_samples=512, seed=0)
        a = workload.make_tasks()
        b = workload.make_tasks()
        a[0].model.set_params(np.zeros(a[0].model.dim))
        assert not np.allclose(b[0].model.get_params(), 0.0)

    def test_segment_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            make_workload(
                num_workers=4, num_samples=512, partition="segments",
                segments_per_worker=[1, 2], seed=0,
            )

    def test_unknown_partition_rejected(self):
        with pytest.raises(ValueError, match="unknown partition"):
            make_workload(num_workers=2, num_samples=512, partition="zipf", seed=0)

    def test_profile_matches_model(self):
        workload = make_workload(model="vgg19", num_workers=2, num_samples=512, seed=0)
        assert workload.profile.name == "vgg19"
        assert workload.profile.param_count == 143_700_000


class TestQuadraticWorkload:
    def test_counts(self):
        tasks, x_star, profile = make_quadratic_workload(4, dim=3, seed=1)
        assert len(tasks) == 4
        assert x_star.shape == (3,)
        assert profile.name == "resnet18"
        assert tasks[0].sampler is None


class TestScenarioRegistry:
    def test_required_families_registered(self):
        from repro.experiments.scenarios import scenario_names
        names = set(scenario_names())
        # Rotating-slowdown, trace-driven, and churn families must all exist
        # (the dynamic-scenario subsystem's acceptance criterion).
        assert {"heterogeneous", "homogeneous", "heterogeneous-static",
                "multi-cloud", "trace-diurnal", "trace-random-walk",
                "trace-burst", "trace-file", "churn"} <= names

    def test_every_family_builds(self, tmp_path):
        import json
        from repro.experiments.scenarios import build_scenario, scenario_names

        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps({
            "num_workers": 4, "latency": 0.001,
            "segments": [{"start": 0.0, "bandwidth": 1e8}],
        }))
        for name in scenario_names():
            workers = 6 if name == "multi-cloud" else 4
            params = {"path": str(trace)} if name == "trace-file" else {}
            scenario = build_scenario(name, num_workers=workers, seed=1, **params)
            assert scenario.num_workers == workers
            assert scenario.links.bandwidth(0, 1, 0.0) > 0
            assert (scenario.churn is not None) == (name == "churn")

    def test_builds_are_deterministic_in_seed(self):
        from repro.experiments.scenarios import build_scenario
        a = build_scenario("trace-burst", 4, seed=3)
        b = build_scenario("trace-burst", 4, seed=3)
        c = build_scenario("trace-burst", 4, seed=4)
        for t in (0.0, 100.0, 500.0):
            np.testing.assert_array_equal(
                a.links.bandwidth_matrix(t), b.links.bandwidth_matrix(t)
            )
        assert any(
            not np.array_equal(a.links.bandwidth_matrix(t), c.links.bandwidth_matrix(t))
            for t in (0.0, 100.0, 500.0)
        )

    def test_param_coercion_and_validation(self):
        from repro.experiments.scenarios import build_scenario, get_scenario_family
        scenario = build_scenario("churn", 4, 0, num_departures="1",
                                  downtime_s="5", horizon_s="60", dynamic="false")
        assert len(scenario.churn) == 2
        family = get_scenario_family("churn")
        assert family.param("num_departures").coerce("3") == 3
        with pytest.raises(ValueError, match="boolean"):
            family.param("dynamic").coerce("maybe")
        with pytest.raises(ValueError, match="no parameter"):
            build_scenario("homogeneous", 4, 0, warp=1)

    def test_duplicate_registration_rejected(self):
        from repro.experiments.scenarios import (
            SCENARIO_FAMILIES, register_scenario_family,
        )
        with pytest.raises(ValueError, match="already registered"):
            register_scenario_family(SCENARIO_FAMILIES["homogeneous"])

    def test_trace_file_family_csv_and_mismatch(self, tmp_path):
        from repro.experiments.scenarios import build_scenario
        csv = tmp_path / "trace.csv"
        csv.write_text(
            "time,src,dst,bandwidth\n"
            "0,0,1,1e8\n0,0,2,1e8\n0,1,2,1e8\n"
            "30,0,1,1e7\n"
        )
        scenario = build_scenario("trace-file", 3, 0, path=str(csv))
        assert scenario.links.bandwidth(0, 1, 31.0) == 1e7
        with pytest.raises(ValueError, match="describes 3 workers"):
            build_scenario("trace-file", 5, 0, path=str(csv))

    def test_every_family_accepts_the_topology_axis(self, tmp_path):
        """Each registered family builds on a non-complete graph, keeps its
        link model, and stamps the graph kind into the scenario name."""
        import json
        from repro.experiments.scenarios import (
            build_scenario, get_scenario_family, scenario_names,
        )

        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps({
            "num_workers": 4, "latency": 0.001,
            "segments": [{"start": 0.0, "bandwidth": 1e8}],
        }))
        for name in scenario_names():
            family = get_scenario_family(name)
            assert "topology" in family.param_names(), (
                f"family {name!r} does not declare the shared topology axis"
            )
            workers = 6 if name == "multi-cloud" else 4
            params = {"path": str(trace)} if name == "trace-file" else {}
            scenario = build_scenario(
                name, num_workers=workers, seed=1, topology="ring", **params
            )
            assert scenario.name.endswith("-ring"), scenario.name
            assert all(
                scenario.topology.degree(i) == 2 for i in range(workers)
            ), name
            assert scenario.links.num_workers == workers
            assert (scenario.churn is not None) == (name == "churn")

    def test_topology_axis_deterministic_and_seed_sensitive(self):
        from repro.experiments.scenarios import build_scenario
        a = build_scenario("heterogeneous", 8, seed=3, topology="random",
                          edge_probability=0.3)
        b = build_scenario("heterogeneous", 8, seed=3, topology="random",
                          edge_probability=0.3)
        c = build_scenario("heterogeneous", 8, seed=4, topology="random",
                          edge_probability=0.3)
        assert a.topology == b.topology
        assert a.topology != c.topology
        # The random graph draws from a dedicated stream: link dynamics are
        # untouched by the topology axis.
        full = build_scenario("heterogeneous", 8, seed=3)
        for t in (0.0, 100.0, 400.0):
            np.testing.assert_array_equal(
                a.links.bandwidth_matrix(t), full.links.bandwidth_matrix(t)
            )

    def test_unbuildable_topology_rejected_at_build(self):
        from repro.experiments.scenarios import build_scenario
        with pytest.raises(ValueError, match="torus"):
            build_scenario("heterogeneous", 5, seed=0, topology="torus")
        with pytest.raises(ValueError, match="unknown topology"):
            build_scenario("heterogeneous", 4, seed=0, topology="mesh")
        with pytest.raises(ValueError, match="power-of-two"):
            build_scenario("heterogeneous", 6, seed=0, topology="hypercube")

    def test_every_family_accepts_the_edge_failure_axis(self, tmp_path):
        """Each registered family promotes its graph to a DynamicTopology
        when edge_failures > 0, suffixes the scenario name, and keeps its
        link model untouched."""
        import json
        from repro.experiments.scenarios import (
            build_scenario, get_scenario_family, scenario_names,
        )
        from repro.graph.topology import DynamicTopology

        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps({
            "num_workers": 4, "latency": 0.001,
            "segments": [{"start": 0.0, "bandwidth": 1e8}],
        }))
        for name in scenario_names():
            family = get_scenario_family(name)
            assert "edge_failures" in family.param_names(), (
                f"family {name!r} does not declare the shared edge axis"
            )
            workers = 6 if name == "multi-cloud" else 4
            params = {"path": str(trace)} if name == "trace-file" else {}
            scenario = build_scenario(
                name, num_workers=workers, seed=1, topology="ring",
                edge_failures=2, edge_horizon_s=100.0, edge_downtime_s=10.0,
                **params,
            )
            assert scenario.name.endswith("-ring-ef2"), scenario.name
            assert isinstance(scenario.topology, DynamicTopology)
            assert len(scenario.topology.flip_times()) == 4  # 2 fail + 2 repair
            assert scenario.links.num_workers == workers

    def test_edge_failure_stream_is_isolated(self):
        """Adding edge failures perturbs neither the link dynamics nor the
        randomized graph draw, and is itself deterministic in the seed."""
        from repro.experiments.scenarios import build_scenario

        plain = build_scenario("heterogeneous", 8, seed=3, topology="random")
        dynamic = build_scenario(
            "heterogeneous", 8, seed=3, topology="random",
            edge_failures=2, edge_horizon_s=100.0, edge_downtime_s=10.0,
        )
        again = build_scenario(
            "heterogeneous", 8, seed=3, topology="random",
            edge_failures=2, edge_horizon_s=100.0, edge_downtime_s=10.0,
        )
        assert dynamic.topology == again.topology
        np.testing.assert_array_equal(
            dynamic.topology.adjacency, plain.topology.adjacency
        )
        for t in (0.0, 100.0, 400.0):
            np.testing.assert_array_equal(
                dynamic.links.bandwidth_matrix(t), plain.links.bandwidth_matrix(t)
            )

    def test_edge_failures_on_a_bridge_only_graph_rejected(self):
        from repro.experiments.scenarios import build_scenario
        with pytest.raises(ValueError, match="bridge"):
            build_scenario("heterogeneous", 4, seed=0, topology="star",
                           edge_failures=1)

    def test_edge_events_builds_a_scripted_dynamic_topology(self):
        """The deterministic event-list axis: same DynamicTopology wrapper
        as edge_failures, but the flip times come verbatim from the script
        (no RNG involvement at all), so two seeds share one schedule."""
        from repro.experiments.scenarios import build_scenario
        from repro.graph.topology import DynamicTopology

        scenario = build_scenario(
            "heterogeneous", 4, seed=0, topology="ring",
            edge_events="0-1@2:4;1-2@5",
        )
        assert scenario.name.endswith("-ring-ev3"), scenario.name
        assert isinstance(scenario.topology, DynamicTopology)
        assert scenario.topology.flip_times() == (2.0, 4.0, 5.0)
        assert scenario.topology.has_edge_at(0, 1, 1.9)
        assert not scenario.topology.has_edge_at(0, 1, 2.0)
        assert scenario.topology.has_edge_at(0, 1, 4.0)
        other_seed = build_scenario(
            "heterogeneous", 4, seed=7, topology="ring",
            edge_events="0-1@2:4;1-2@5",
        )
        assert other_seed.topology.flip_times() == (2.0, 4.0, 5.0)

    def test_edge_events_spec_time_rejections(self):
        from repro.experiments.scenarios import build_scenario

        with pytest.raises(ValueError, match="mutually exclusive"):
            build_scenario("heterogeneous", 4, seed=0, topology="ring",
                           edge_events="0-1@2", edge_failures=1)
        with pytest.raises(ValueError, match="does not contain"):
            build_scenario("heterogeneous", 5, seed=0, topology="ring",
                           edge_events="0-2@2")
        with pytest.raises(ValueError, match="disconnect"):
            build_scenario("heterogeneous", 4, seed=0, topology="ring",
                           edge_events="0-1@2;1-2@3")

    def test_churn_scenario_runs_end_to_end(self):
        from repro.algorithms.base import TrainerConfig
        from repro.experiments.harness import run_trainer
        from repro.experiments.scenarios import build_scenario

        scenario = build_scenario("churn", 4, 0, horizon_s=10.0,
                                  downtime_s=3.0, num_departures=1)
        workload = make_workload("mobilenet", "mnist", num_workers=4,
                                 batch_size=32, num_samples=256, seed=0)
        config = TrainerConfig(max_sim_time=10.0, eval_interval_s=5.0, seed=0)
        result = run_trainer("adpsgd", scenario, workload, config)
        assert len(result.extras["churn_events"]) == 2

    def test_every_family_accepts_the_compression_axis(self, tmp_path):
        """Each registered family declares the shared compression axis,
        attaches the op, and stamps the ``-c{op}`` suffix into the name;
        ``compression="none"`` builds the identical scenario object."""
        import json
        from repro.experiments.scenarios import (
            build_scenario, get_scenario_family, scenario_names,
        )
        from repro.network.compression import TopK

        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps({
            "num_workers": 4, "latency": 0.001,
            "segments": [{"start": 0.0, "bandwidth": 1e8}],
        }))
        for name in scenario_names():
            family = get_scenario_family(name)
            assert "compression" in family.param_names(), (
                f"family {name!r} does not declare the shared compression axis"
            )
            workers = 6 if name == "multi-cloud" else 4
            params = {"path": str(trace)} if name == "trace-file" else {}
            scenario = build_scenario(
                name, num_workers=workers, seed=1,
                compression="topk", compression_param=0.25, **params,
            )
            assert scenario.name.endswith("-ctopk0.25"), scenario.name
            assert scenario.compression == TopK(k=0.25)
            plain = build_scenario(
                name, num_workers=workers, seed=1, compression="none", **params
            )
            assert plain.compression is None
            assert not plain.name.endswith("-cnone"), plain.name

    def test_compression_composes_with_the_topology_axis(self):
        from repro.experiments.scenarios import build_scenario
        from repro.network.compression import QSGD

        scenario = build_scenario(
            "heterogeneous", 4, 1,
            topology="ring", compression="qsgd", compression_param=4,
        )
        assert scenario.name.endswith("-ring-cqsgd4"), scenario.name
        assert scenario.compression == QSGD(bits=4)
        assert all(scenario.topology.degree(i) == 2 for i in range(4))

    def test_bad_compression_rejected_at_spec_time(self):
        from repro.experiments.scenarios import build_scenario

        with pytest.raises(ValueError, match="unknown compression op"):
            build_scenario("heterogeneous", 4, 0, compression="gzip")
        with pytest.raises(ValueError, match="integral"):
            build_scenario("heterogeneous", 4, 0, compression="qsgd",
                           compression_param=7.5)
        with pytest.raises(ValueError, match="topk"):
            build_scenario("heterogeneous", 4, 0, compression="topk",
                           compression_param=1.5)
