"""Unit tests for scenario and workload builders."""

import numpy as np
import pytest

from repro.experiments.scenarios import (
    heterogeneous_scenario,
    homogeneous_scenario,
    make_quadratic_workload,
    make_workload,
    multi_cloud_scenario,
)
from repro.network.links import DynamicSlowdownLinks, StaticLinks


class TestScenarios:
    def test_heterogeneous_default_is_dynamic(self):
        scenario = heterogeneous_scenario(8)
        assert isinstance(scenario.links, DynamicSlowdownLinks)
        assert scenario.num_workers == 8
        assert scenario.topology.is_connected()

    def test_heterogeneous_static_option(self):
        scenario = heterogeneous_scenario(4, dynamic=False)
        assert isinstance(scenario.links, StaticLinks)

    def test_heterogeneous_has_two_link_classes(self):
        scenario = heterogeneous_scenario(8, dynamic=False)
        matrix = scenario.links.bandwidth_matrix(0.0)
        off = ~np.eye(8, dtype=bool)
        assert len(np.unique(matrix[off])) == 2  # intra vs inter

    def test_homogeneous_uniform_links(self):
        scenario = homogeneous_scenario(6)
        matrix = scenario.links.bandwidth_matrix(0.0)
        off = ~np.eye(6, dtype=bool)
        assert len(np.unique(matrix[off])) == 1

    def test_multi_cloud_six_workers(self):
        scenario = multi_cloud_scenario()
        assert scenario.num_workers == 6


class TestMakeWorkload:
    def test_uniform_default(self):
        workload = make_workload(num_workers=4, num_samples=512, seed=0)
        assert workload.num_workers == 4
        assert len(set(workload.batch_sizes)) == 1
        assert workload.test_data is not None

    def test_segment_batch_scaling(self):
        workload = make_workload(
            num_workers=4, num_samples=512, partition="segments",
            segments_per_worker=[1, 1, 2, 1], batch_size=16, seed=0,
        )
        assert workload.batch_sizes == [16, 16, 32, 16]
        assert len(workload.shards[2]) > len(workload.shards[0])

    def test_drop_labels_partition(self):
        workload = make_workload(
            model="mobilenet", dataset="mnist", num_workers=2, num_samples=512,
            partition="drop-labels", lost_labels=[(0, 1), (2, 3)], seed=0,
        )
        assert not np.isin(workload.shards[0].labels, [0, 1]).any()

    def test_tasks_start_identical(self):
        workload = make_workload(num_workers=3, num_samples=512, seed=0)
        tasks = workload.make_tasks()
        for task in tasks[1:]:
            np.testing.assert_array_equal(
                task.model.get_params(), tasks[0].model.get_params()
            )

    def test_make_tasks_independent_copies(self):
        workload = make_workload(num_workers=2, num_samples=512, seed=0)
        a = workload.make_tasks()
        b = workload.make_tasks()
        a[0].model.set_params(np.zeros(a[0].model.dim))
        assert not np.allclose(b[0].model.get_params(), 0.0)

    def test_segment_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            make_workload(
                num_workers=4, num_samples=512, partition="segments",
                segments_per_worker=[1, 2], seed=0,
            )

    def test_unknown_partition_rejected(self):
        with pytest.raises(ValueError, match="unknown partition"):
            make_workload(num_workers=2, num_samples=512, partition="zipf", seed=0)

    def test_profile_matches_model(self):
        workload = make_workload(model="vgg19", num_workers=2, num_samples=512, seed=0)
        assert workload.profile.name == "vgg19"
        assert workload.profile.param_count == 143_700_000


class TestQuadraticWorkload:
    def test_counts(self):
        tasks, x_star, profile = make_quadratic_workload(4, dim=3, seed=1)
        assert len(tasks) == 4
        assert x_star.shape == (3,)
        assert profile.name == "resnet18"
        assert tasks[0].sampler is None
