"""Service-layer tests for the long-lived sweep queue.

The broker's PR 5 contract (claim/complete/fail/reclaim) lives in
test_executors.py; this file covers the service features layered on top:
counter-based lease staleness (the mtime bugfix), per-run reclaim
settings (the multi-tenant reclaim bugfix), coordinator run liveness (the
crashed-coordinator STOP lockout bugfix), deterministic jittered polling
(the thundering-herd bugfix), batch leases, priority + fair-share
scheduling across concurrent sweeps, the worker registry, and streaming
aggregation.
"""

import json
import os
import pickle
import threading
import time

import numpy as np
import pytest

from repro.experiments.executors import (
    MIN_LEASE_TIMEOUT_S,
    InlineExecutor,
    QueueExecutor,
    ResultCache,
    WorkQueue,
    _append_heartbeat_byte,
    _LeaseHeartbeat,
    _poll_delay,
    _poll_jitter,
    _TaskName,
    make_executor,
    run_queue_worker,
)
from repro.experiments.harness import estimate_cell_cost
from repro.experiments.reporting import format_worker_health
from repro.experiments.sweeps import (
    SweepProgress,
    aggregate_outcomes,
    aggregate_sweep,
    run_sweep,
)
# Same-directory import (pytest prepend mode; the test tree is not a
# package): the sweep tests own the tiny-spec helpers.
from test_sweeps import (
    assert_results_identical,
    metric_rows,
    tiny_spec,
)

FAST = dict(lease_timeout_s=5.0, poll_interval_s=0.02)


def assert_rows_equal(a, b):
    """metric_rows equality that treats NaN == NaN (partial snapshots have
    single-seed groups, whose std columns are NaN by contract)."""
    def norm(rows):
        return [["nan" if isinstance(v, float) and np.isnan(v) else v
                 for v in row] for row in rows]
    assert norm(a) == norm(b)


def make_queue(tmp_path) -> WorkQueue:
    return WorkQueue(str(tmp_path / "queue"))


def single_cell_claim(tmp_path):
    """A queue holding one claimed (leased) cell, as a dead peer left it."""
    spec = tiny_spec(algorithms=("adpsgd",), seeds=(0,))
    (cell,) = spec.cells()
    queue = make_queue(tmp_path)
    assert queue.enqueue(cell)
    claim = queue.claim()
    assert claim is not None
    return queue, claim


class TestCounterStaleness:
    """The lease-staleness bugfix: liveness is the heartbeat counter inside
    the lease file, never the file's mtime or any wall clock."""

    def test_frozen_mtime_with_live_heartbeat_is_never_reclaimed(self, tmp_path):
        """Regression: an hour-old mtime (coarse NFS stamps, skewed client
        clocks) must not get a *live* worker's lease reclaimed as long as
        its heartbeat counter keeps advancing."""
        queue, claim = single_cell_claim(tmp_path)
        past = time.time() - 3600.0
        for _ in range(4):
            os.utime(claim.lease_path, (past, past))
            assert queue.reclaim_stale(lease_timeout_s=0.1, max_attempts=3) == 0
            with open(claim.lease_path, "ab") as handle:
                handle.write(b"\0")  # the worker's heartbeat
            time.sleep(0.15)  # a full timeout window passes between looks
        assert queue.active_leases() and not queue.pending_tasks()

    def test_frozen_counter_with_fresh_mtime_is_reclaimed(self, tmp_path):
        """The inverse direction: a constantly-touched mtime cannot hide a
        dead worker whose heartbeat counter stopped moving."""
        queue, claim = single_cell_claim(tmp_path)
        assert queue.reclaim_stale(lease_timeout_s=0.1, max_attempts=3) == 0
        time.sleep(0.15)
        os.utime(claim.lease_path)  # mtime says "touched just now"
        assert queue.reclaim_stale(lease_timeout_s=0.1, max_attempts=3) == 1
        (task,) = queue.pending_tasks()
        assert task.attempt == 2

    def test_reclaimed_lease_with_heartbeat_tail_still_unpickles(self, tmp_path):
        """Heartbeat bytes appended to the lease must be invisible to the
        next claimant: pickle stops at its STOP opcode."""
        queue, claim = single_cell_claim(tmp_path)
        with open(claim.lease_path, "ab") as handle:
            handle.write(b"\0" * 17)
        queue.requeue(claim)
        reclaimed = queue.claim()
        assert reclaimed is not None
        assert reclaimed.cell.cache_key() == claim.cell.cache_key()

    def test_heartbeat_never_resurrects_a_removed_lease(self, tmp_path):
        path = str(tmp_path / "gone.lease")
        with open(path, "wb") as handle:
            handle.write(b"payload")
        with _LeaseHeartbeat(path, interval_s=0.05):
            deadline = time.monotonic() + 5.0
            while (os.path.getsize(path) == len(b"payload")
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert os.path.getsize(path) > len(b"payload"), "no beat arrived"
            os.unlink(path)  # completion / reclaim removes the lease
            time.sleep(0.2)
            assert not os.path.exists(path)

    def test_executor_enforces_lease_timeout_floor(self, tmp_path):
        with pytest.raises(ValueError, match="lease_timeout_s"):
            QueueExecutor(str(tmp_path / "q"), lease_timeout_s=0.5)
        QueueExecutor(
            str(tmp_path / "q"), lease_timeout_s=MIN_LEASE_TIMEOUT_S
        )  # the floor itself is accepted

    def test_heartbeat_append_cannot_create_a_missing_lease(self, tmp_path):
        """Regression: the append must open without O_CREAT, so a beat that
        races completion/reclaim can never resurrect the removed lease as
        an unpicklable ghost."""
        path = str(tmp_path / "gone.lease")
        assert _append_heartbeat_byte(path) is False
        assert not os.path.exists(path)
        with open(path, "wb") as handle:
            handle.write(b"x")
        assert _append_heartbeat_byte(path) is True
        assert os.path.getsize(path) == 2


def _unpicklable_payload():
    raise ValueError("corrupt payload")


class _ExplodesOnUnpickle:
    """Pickles fine; unpickling raises ValueError -- an exception *outside*
    pickle's own error types, as real corrupt bytes can produce."""

    def __reduce__(self):
        return (_unpicklable_payload, ())


class TestResultCacheCorruption:
    """Corrupt cache bytes can raise nearly any exception type on unpickle;
    none of them may escape the cache's read paths."""

    def test_peek_treats_arbitrary_unpickle_errors_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        with open(cache.path("k"), "wb") as handle:
            handle.write(pickle.dumps(_ExplodesOnUnpickle()))
        assert cache.peek("k") is None
        assert os.path.exists(cache.path("k"))  # peek never quarantines

    def test_load_quarantines_arbitrary_unpickle_errors(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        with open(cache.path("k"), "wb") as handle:
            handle.write(pickle.dumps(_ExplodesOnUnpickle()))
        assert cache.load("k") is None
        assert not os.path.exists(cache.path("k"))
        entries = sorted(os.listdir(cache.quarantine_dir()))
        assert [e for e in entries if e.endswith(".pkl")]
        (reason,) = [e for e in entries if e.endswith(".reason.txt")]
        with open(os.path.join(cache.quarantine_dir(), reason)) as handle:
            assert "ValueError: corrupt payload" in handle.read()


class TestPerRunReclaimSettings:
    """Regression for the multi-tenant reclaim bug: reclaim_stale must judge
    each lease by its own run's lease timeout and retry budget (resolved
    through runs/<run_id>.json), never the observing tenant's settings."""

    def claimed_cell(self, queue, *, run_id, lease_timeout_s, max_attempts):
        queue.write_config(
            cache_dir=queue.default_results_dir(),
            max_attempts=max_attempts,
            lease_timeout_s=lease_timeout_s,
            run_id=run_id,
        )
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0,))
        (cell,) = spec.cells()
        assert queue.enqueue(cell, run=run_id)
        claim = queue.claim()
        assert claim is not None
        return claim

    def test_short_timeout_tenant_cannot_reclaim_other_runs_live_lease(
        self, tmp_path
    ):
        """A coordinator with lease_timeout_s=0.05 sharing the directory
        with a run whose timeout is 60s must never see that run's lease --
        heartbeating every 20s, far slower than 0.05s -- as frozen."""
        queue = make_queue(tmp_path)
        self.claimed_cell(queue, run_id="slow-run",
                          lease_timeout_s=60.0, max_attempts=1)
        observer = WorkQueue(str(tmp_path / "queue"))  # the other tenant
        assert observer.reclaim_stale(lease_timeout_s=0.05, max_attempts=1) == 0
        time.sleep(0.15)  # far past the observer's own window
        assert observer.reclaim_stale(lease_timeout_s=0.05, max_attempts=1) == 0
        assert queue.active_leases() and not queue.pending_tasks()
        assert queue.failed_keys() == []  # no bogus terminal failure

    def test_reclaim_spends_the_runs_own_budget_not_the_observers(self, tmp_path):
        """The inverse: a lenient observer still reclaims on the lease's own
        run settings -- short window, single-attempt budget -> terminal."""
        queue = make_queue(tmp_path)
        claim = self.claimed_cell(queue, run_id="fast-run",
                                  lease_timeout_s=0.1, max_attempts=1)
        observer = WorkQueue(str(tmp_path / "queue"))
        assert observer.reclaim_stale(lease_timeout_s=999.0, max_attempts=99) == 0
        time.sleep(0.15)
        assert observer.reclaim_stale(lease_timeout_s=999.0, max_attempts=99) == 1
        assert observer.failed_keys() == [claim.name.key]
        assert not queue.active_leases() and not queue.pending_tasks()

    def test_runless_lease_falls_back_to_passed_settings(self, tmp_path):
        queue, _ = single_cell_claim(tmp_path)  # pre-service, no run record
        assert queue.reclaim_stale(lease_timeout_s=0.05, max_attempts=3) == 0
        time.sleep(0.1)
        assert queue.reclaim_stale(lease_timeout_s=0.05, max_attempts=3) == 1
        (task,) = queue.pending_tasks()
        assert task.attempt == 2


class TestRunLiveness:
    """Regression for the crashed-coordinator STOP lockout: a run whose
    coordinator died without signal_stop must stop counting as live one
    observation window after its queue drains."""

    def register_run(self, queue, run_id, lease_timeout_s=0.1):
        queue.write_config(
            cache_dir=queue.default_results_dir(), max_attempts=3,
            lease_timeout_s=lease_timeout_s, run_id=run_id,
        )

    def test_frozen_coordinator_ages_out_of_live(self, tmp_path):
        queue = make_queue(tmp_path)
        self.register_run(queue, "dead-run")
        observer = WorkQueue(str(tmp_path / "queue"))
        assert observer.live_run_ids(5.0) == ["dead-run"]  # first observation
        time.sleep(0.15)  # beats counter frozen across the run's own window
        assert observer.live_run_ids(5.0) == []
        assert observer.active_run_ids() == ["dead-run"]  # raw flag untouched

    def test_heartbeats_keep_a_run_live(self, tmp_path):
        queue = make_queue(tmp_path)
        self.register_run(queue, "live-run")
        observer = WorkQueue(str(tmp_path / "queue"))
        for _ in range(3):
            assert observer.live_run_ids(5.0) == ["live-run"]
            queue.heartbeat_run("live-run")
            time.sleep(0.15)
        assert observer.live_run_ids(5.0) == ["live-run"]

    def test_outstanding_tasks_keep_a_run_live_without_heartbeats(self, tmp_path):
        queue = make_queue(tmp_path)
        self.register_run(queue, "busy-run")
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0,))
        (cell,) = spec.cells()
        queue.enqueue(cell, run="busy-run")
        observer = WorkQueue(str(tmp_path / "queue"))
        assert observer.live_run_ids(5.0) == ["busy-run"]
        time.sleep(0.15)
        assert observer.live_run_ids(5.0) == ["busy-run"]

    def test_worker_honors_stop_despite_a_crashed_coordinators_run(self, tmp_path):
        """End to end: one crashed coordinator's forever-active record used
        to disable STOP for the whole directory, pinning every worker to
        its full drain timeout."""
        queue = make_queue(tmp_path)
        self.register_run(queue, "crashed-run")  # never heartbeats again
        done: list[object] = []

        def drain() -> None:
            done.append(run_queue_worker(
                str(tmp_path / "queue"), poll_interval_s=0.02,
                drain_timeout_s=60.0,
            ))

        worker = threading.Thread(target=drain)
        worker.start()
        time.sleep(0.1)  # let the worker observe the frozen run once
        queue.signal_stop("other-run")  # some healthy tenant finishing
        worker.join(timeout=10.0)
        assert not worker.is_alive(), (
            "worker ignored STOP while a dead coordinator's run stayed active"
        )
        assert done and done[0].executed == 0


class TestClearStopPruning:
    def test_clear_stop_prunes_retired_records_only(self, tmp_path):
        """A new sweep generation garbage-collects what no longer governs
        anything: inactive task-less run records and exited workers. A
        crashed sweep's record (inactive but with tasks left) survives --
        workers still resolve those tasks' settings through it."""
        queue = make_queue(tmp_path)
        for run_id in ("retired-run", "leftover-run"):
            queue.write_config(
                cache_dir=queue.default_results_dir(), max_attempts=3,
                lease_timeout_s=5.0, run_id=run_id,
            )
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0,))
        (cell,) = spec.cells()
        queue.enqueue(cell, run="leftover-run")
        queue.signal_stop("retired-run")
        queue.signal_stop("leftover-run")
        for worker, status in (("w-gone", "exited"), ("w-live", "idle")):
            queue._atomic_write_json(
                os.path.join(queue.registry_dir, f"{worker}.json"),
                {"worker": worker, "status": status},
            )
        queue.clear_stop()
        assert queue.stop_marker_id() is None
        assert [run["run_id"] for run in queue.list_runs()] == ["leftover-run"]
        assert [w["worker"] for w in queue.registry_records()] == ["w-live"]


class TestJitteredPolling:
    """The thundering-herd bugfix: poll phase comes from the worker id, so
    it is deterministic (repro-lint clean) yet spread across a fleet."""

    def test_jitter_is_deterministic_per_worker(self):
        assert _poll_jitter("host-1234") == _poll_jitter("host-1234")
        assert 0.0 <= _poll_jitter("host-1234") < 1.0

    def test_jitter_spreads_a_fleet(self):
        values = {_poll_jitter(f"host-{pid}") for pid in range(64)}
        assert len(values) == 64  # no two workers share a poll phase

    def test_backoff_doubles_and_caps(self):
        delays = [
            _poll_delay(0.1, jitter=0.5, idle_polls=n, empty_but_leased=False)
            for n in (1, 2, 3, 4, 5, 50)
        ]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.8, 0.8, 0.8])

    def test_empty_but_leased_caps_immediately(self):
        """Nothing claimable but peers still executing: rescans can only
        discover lease-timeout-scale events, so the first idle poll already
        sleeps at the full backoff cap."""
        assert _poll_delay(
            0.1, jitter=0.5, idle_polls=1, empty_but_leased=True
        ) == pytest.approx(0.8)

    def test_two_workers_never_sleep_in_lockstep(self):
        a = _poll_delay(0.1, _poll_jitter("host-1"), 1, empty_but_leased=False)
        b = _poll_delay(0.1, _poll_jitter("host-2"), 1, empty_but_leased=False)
        assert a != b


class TestTaskNames:
    def test_service_format_roundtrip(self):
        name = _TaskName(key="ab" * 32, attempt=2, run="deadbeef", priority=5)
        assert name.stem() == "ab" * 32 + ".p00000005.rdeadbeef.a2"
        assert _TaskName.parse(name.stem() + ".task") == name

    def test_pre_service_format_still_parses(self):
        """PR 5 queue directories survive a coordinator upgrade."""
        old = _TaskName.parse("cd" * 32 + ".a3.task")
        assert old == _TaskName(key="cd" * 32, attempt=3, run="", priority=0)
        assert old.stem() == "cd" * 32 + ".a3"  # run-less stays old-format

    def test_priority_is_clamped(self, tmp_path):
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0,))
        (cell,) = spec.cells()
        queue = make_queue(tmp_path)
        assert queue.enqueue(cell, run="r", priority=10**12)
        (task,) = queue.pending_tasks()
        assert task.priority == _TaskName.MAX_PRIORITY


class TestBatchLeases:
    def test_claim_batch_claims_up_to_limit(self, tmp_path):
        cells = tiny_spec().cells()
        queue = make_queue(tmp_path)
        for cell in cells:
            assert queue.enqueue(cell, run="r1")
        claims = queue.claim_batch(3)
        assert len(claims) == 3
        assert len(queue.active_leases()) == 3
        assert len(queue.pending_tasks()) == len(cells) - 3

    def test_requeue_returns_an_unexecuted_tail(self, tmp_path):
        cells = tiny_spec().cells()
        queue = make_queue(tmp_path)
        for cell in cells:
            queue.enqueue(cell, run="r1")
        claims = queue.claim_batch(len(cells))
        queue.requeue(claims[-1])
        assert len(queue.pending_tasks()) == 1
        (claim,) = queue.claim_batch(10)
        assert claim.name.key == claims[-1].name.key
        assert claim.name.attempt == claims[-1].name.attempt  # no attempt spent

    def test_capped_worker_never_strands_a_batch_tail(self, tmp_path):
        """max_cells=1 with a large published lease_batch must execute one
        cell and leave the rest claimable, not leased."""
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0, 1))
        queue = make_queue(tmp_path)
        queue.write_config(
            cache_dir=queue.default_results_dir(),
            max_attempts=3,
            lease_timeout_s=5.0,
            run_id="run-1",
            lease_batch=8,
        )
        for cell in spec.cells():
            queue.enqueue(cell, run="run-1")
        summary = run_queue_worker(
            str(tmp_path / "queue"), poll_interval_s=0.02,
            drain_timeout_s=0.2, max_cells=1,
        )
        assert summary.executed == 1
        assert queue.active_leases() == []
        assert len(queue.pending_tasks()) == 1


class TestPriorityScheduling:
    def test_explicit_priority_orders_claims(self, tmp_path):
        cells = tiny_spec().cells()
        queue = make_queue(tmp_path)
        queue.enqueue(cells[0], run="r", priority=5)
        queue.enqueue(cells[1], run="r", priority=9)
        claims = queue.claim_batch(2)
        assert [c.name.priority for c in claims] == [9, 5]

    def test_default_priority_is_estimated_cost_slowest_first(self, tmp_path):
        """Synchronous baselines (allreduce) cost more than gossip-family
        cells, so a mixed grid starts them first."""
        cells = tiny_spec().cells()  # adpsgd x2 seeds, allreduce x2 seeds
        queue = make_queue(tmp_path)
        for cell in cells:
            queue.enqueue(cell, run="r")
        claims = queue.claim_batch(len(cells))
        algorithms = [claim.cell.algorithm for claim in claims]
        assert algorithms == ["allreduce", "allreduce", "adpsgd", "adpsgd"]
        for claim in claims:
            assert claim.name.priority == claim.cell.estimated_cost()

    def test_estimate_cell_cost_ranking(self):
        kwargs = dict(num_workers=8, max_sim_time=100.0, num_samples=256)
        costs = {
            name: estimate_cell_cost(name, **kwargs)
            for name in ("netmax", "allreduce", "adpsgd")
        }
        assert costs["netmax"] > costs["allreduce"] > costs["adpsgd"] > 0
        assert estimate_cell_cost(
            "adpsgd", num_workers=16, max_sim_time=100.0
        ) == 2 * estimate_cell_cost("adpsgd", num_workers=8, max_sim_time=100.0)
        # Unregistered trainers schedule at gossip weight, not zero.
        assert estimate_cell_cost(
            "mystery", num_workers=8, max_sim_time=100.0
        ) == estimate_cell_cost("adpsgd", num_workers=8, max_sim_time=100.0)


class TestFairShare:
    def test_single_worker_alternates_between_runs(self, tmp_path):
        """One worker draining two concurrent sweeps must interleave them
        (rotation cursor), not drain whichever run id sorts first."""
        cells = tiny_spec().cells()
        queue = make_queue(tmp_path)
        for cell in cells[:2]:
            queue.enqueue(cell, run="aaa", priority=1)
        for cell in cells[2:]:
            queue.enqueue(cell, run="bbb", priority=1)
        rotation = None
        order = []
        while True:
            claims = queue.claim_batch(1, rotation=rotation)
            if not claims:
                break
            rotation = claims[0].name.run
            order.append(rotation)
        assert order == ["aaa", "bbb", "aaa", "bbb"]

    def test_batch_claim_interleaves_runs(self, tmp_path):
        cells = tiny_spec().cells()
        queue = make_queue(tmp_path)
        for cell in cells[:2]:
            queue.enqueue(cell, run="aaa", priority=1)
        for cell in cells[2:]:
            queue.enqueue(cell, run="bbb", priority=1)
        claims = queue.claim_batch(4)
        assert [c.name.run for c in claims] == ["aaa", "bbb", "aaa", "bbb"]


class TestWorkerRegistry:
    def test_registry_records_worker_lifecycle(self, tmp_path):
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0,))
        (cell,) = spec.cells()
        queue = make_queue(tmp_path)
        queue.write_config(
            cache_dir=queue.default_results_dir(),
            max_attempts=3,
            lease_timeout_s=5.0,
            run_id="run-1",
        )
        queue.enqueue(cell, run="run-1")
        summary = run_queue_worker(
            str(tmp_path / "queue"), poll_interval_s=0.02, drain_timeout_s=0.2
        )
        (record,) = queue.registry_records()
        assert record["worker"] == summary.worker
        assert record["pid"] == os.getpid()
        assert record["status"] == "exited"
        assert record["current_cell"] is None
        assert record["cells_completed"] == 1
        assert record["cells_failed"] == 0
        assert record["cells_skipped"] == 0

    def test_format_worker_health_renders_fleet(self):
        assert format_worker_health([]) == ""
        line = format_worker_health([
            {"worker": "host-1", "status": "executing",
             "current_cell": "adpsgd/s0/het4w", "cells_completed": 3,
             "cells_failed": 1},
            {"worker": "host-2", "status": "idle", "cells_completed": 2},
        ])
        assert line.startswith("2 worker(s): ")
        assert "host-1 executing adpsgd/s0/het4w (3 done, 1 failed)" in line
        assert "host-2 idle (2 done)" in line


class TestStatusSnapshot:
    def test_snapshot_reports_depths_runs_and_workers(self, tmp_path):
        cells = tiny_spec().cells()
        queue = make_queue(tmp_path)
        queue.write_config(
            cache_dir=queue.default_results_dir(),
            max_attempts=3,
            lease_timeout_s=5.0,
            run_id="run-1",
        )
        for cell in cells[:3]:
            queue.enqueue(cell, run="run-1")
        queue.claim()
        snapshot = queue.status_snapshot()
        assert snapshot["pending"] == 2
        assert snapshot["leased"] == 1
        assert snapshot["completed"] == 0
        assert snapshot["failed"] == []
        assert snapshot["stop"] is None
        (run,) = snapshot["runs"]
        assert run["run_id"] == "run-1"
        assert run["active"] is True
        assert run["pending"] == 2 and run["leased"] == 1
        assert snapshot["workers"] == []
        json.dumps(snapshot)  # the CLI prints this verbatim

    def test_pre_service_tasks_appear_as_runless_group(self, tmp_path):
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0,))
        (cell,) = spec.cells()
        queue = make_queue(tmp_path)
        queue.enqueue(cell)  # run-less, PR 5 style
        (run,) = queue.status_snapshot()["runs"]
        assert run == {"run_id": "", "active": None, "coordinator": None,
                       "pending": 1, "leased": 0}

    def test_stop_deactivates_only_its_run(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.write_config(
            cache_dir=queue.default_results_dir(), max_attempts=3,
            lease_timeout_s=5.0, run_id="run-a",
        )
        queue.write_config(
            cache_dir=queue.default_results_dir(), max_attempts=3,
            lease_timeout_s=5.0, run_id="run-b",
        )
        assert sorted(queue.active_run_ids()) == ["run-a", "run-b"]
        queue.signal_stop("run-a")
        assert queue.active_run_ids() == ["run-b"]
        assert queue.stop_marker_id() == "run-a"


class TestStreamingAggregation:
    def test_inline_stream_snapshots_match_batch_aggregation(self, tmp_path):
        spec = tiny_spec()
        snapshots: list[SweepProgress] = []
        result = run_sweep(
            spec, executor=InlineExecutor(),
            cache_dir=str(tmp_path / "cache"), stream=snapshots.append,
        )
        total = len(spec.cells())
        # One snapshot per finished cell plus the final done=True snapshot.
        assert [s.completed for s in snapshots] == list(range(1, total + 1)) + [total]
        assert [s.done for s in snapshots] == [False] * total + [True]
        for snapshot in snapshots:
            # A partial table equals the batch aggregation run on the same
            # subset of outcomes -- one code path, incremental or not.
            assert_rows_equal(
                metric_rows(snapshot.aggregate()),
                metric_rows(aggregate_outcomes(spec, snapshot.outcomes)),
            )
        # The final streamed table is the batch table, bit for bit.
        assert_rows_equal(
            metric_rows(snapshots[-1].aggregate()),
            metric_rows(aggregate_sweep(result)),
        )

    def test_queue_stream_partial_tables_over_half_drained_queue(self, tmp_path):
        spec = tiny_spec()
        snapshots: list[SweepProgress] = []
        result = run_sweep(
            spec,
            executor=QueueExecutor(str(tmp_path / "queue"), num_workers=1, **FAST),
            stream=snapshots.append,
        )
        assert snapshots and snapshots[-1].done
        partials = [s for s in snapshots if not s.done]
        assert partials, "queue backend streamed no mid-drain snapshots"
        for snapshot in partials:
            assert 0 < snapshot.completed <= len(spec.cells())
            assert_rows_equal(
                metric_rows(snapshot.aggregate()),
                metric_rows(aggregate_outcomes(spec, snapshot.outcomes)),
            )
        assert_rows_equal(
            metric_rows(snapshots[-1].aggregate()),
            metric_rows(aggregate_sweep(result)),
        )
        # Streaming is observational: the streamed sweep equals inline.
        inline = run_sweep(spec, executor=InlineExecutor())
        for ours, theirs in zip(result.outcomes, inline.outcomes):
            assert_results_identical(ours.result, theirs.result)

    def test_cached_sweep_streams_only_the_final_snapshot(self, tmp_path):
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0,))
        cache_dir = str(tmp_path / "cache")
        run_sweep(spec, executor=InlineExecutor(), cache_dir=cache_dir)
        snapshots: list[SweepProgress] = []
        run_sweep(
            spec, executor=InlineExecutor(), cache_dir=cache_dir,
            stream=snapshots.append,
        )
        (final,) = snapshots
        assert final.done and final.completed == final.total == 1


class TestConcurrentSweeps:
    def test_two_coordinators_share_one_queue_dir_bit_identically(self, tmp_path):
        """The two-tenant contract: two sweeps, one queue directory, one
        shared fleet -- both complete, both bit-identical to inline, and
        the registry and run records wind down cleanly."""
        spec_a = tiny_spec(algorithms=("adpsgd",))
        spec_b = tiny_spec(algorithms=("allreduce",))
        queue_dir = str(tmp_path / "queue")
        results: dict[str, object] = {}
        errors: list[BaseException] = []

        def coordinate(name: str, spec) -> None:
            try:
                results[name] = run_sweep(
                    spec,
                    executor=QueueExecutor(
                        queue_dir, num_workers=1, lease_batch=2, **FAST
                    ),
                )
            except BaseException as error:  # surfaced after join
                errors.append(error)

        threads = [
            threading.Thread(target=coordinate, args=("a", spec_a)),
            threading.Thread(target=coordinate, args=("b", spec_b)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300.0)
        assert not errors, errors
        assert set(results) == {"a", "b"}

        for spec, name in ((spec_a, "a"), (spec_b, "b")):
            inline = run_sweep(spec, executor=InlineExecutor())
            for ours, theirs in zip(results[name].outcomes, inline.outcomes):
                assert ours.cell == theirs.cell
                assert_results_identical(ours.result, theirs.result)

        queue = WorkQueue(queue_dir)
        snapshot = queue.status_snapshot()
        assert snapshot["pending"] == 0 and snapshot["leased"] == 0
        assert len(snapshot["runs"]) == 2
        assert all(run["active"] is False for run in snapshot["runs"])
        assert snapshot["workers"], "local workers never registered"
        assert all(w["status"] == "exited" for w in snapshot["workers"])
        # Telemetry carries (run, seq): each completed cell is attributed
        # to exactly one of the two runs.
        run_ids = {run["run_id"] for run in snapshot["runs"]}
        for cell in spec_a.cells() + spec_b.cells():
            meta = queue.read_meta(cell.cache_key())
            assert meta is not None
            assert meta["run"] in run_ids
            assert meta["seq"] >= 1

    def test_one_coordinator_stopping_does_not_strand_the_other(self, tmp_path):
        """A worker seeing a STOP marker while another registered run is
        still active must keep serving that run."""
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0,))
        (cell,) = spec.cells()
        queue = make_queue(tmp_path)
        queue.write_config(
            cache_dir=queue.default_results_dir(), max_attempts=3,
            lease_timeout_s=5.0, run_id="done-run",
        )
        queue.write_config(
            cache_dir=queue.default_results_dir(), max_attempts=3,
            lease_timeout_s=5.0, run_id="live-run",
        )
        queue.enqueue(cell, run="live-run")
        queue.signal_stop("done-run")  # the other coordinator finished
        summary = run_queue_worker(
            str(tmp_path / "queue"), poll_interval_s=0.02, drain_timeout_s=0.3
        )
        assert summary.executed == 1  # served live-run despite the marker
        assert ResultCache(queue.default_results_dir()).load(
            cell.cache_key()
        ) is not None


class TestMakeExecutorService:
    def test_lease_batch_flows_through(self, tmp_path):
        executor = make_executor(
            "queue", queue_dir=str(tmp_path / "q"), lease_batch=4
        )
        assert executor.lease_batch == 4

    def test_invalid_lease_batch_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="lease_batch"):
            QueueExecutor(str(tmp_path / "q"), lease_batch=0)
