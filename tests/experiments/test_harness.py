"""Unit tests for the comparison harness."""

import numpy as np
import pytest

from repro.algorithms.base import TrainerConfig
from repro.experiments.harness import run_comparison, run_trainer, time_to_loss_speedups
from repro.experiments.scenarios import heterogeneous_scenario, make_workload
from repro.simulation.records import EpochCostTracker, TrainingHistory, TrainingResult


@pytest.fixture(scope="module")
def setup():
    scenario = heterogeneous_scenario(num_workers=4, seed=2)
    workload = make_workload(
        "mobilenet", "mnist", num_workers=4, batch_size=32, num_samples=512, seed=2
    )
    config = TrainerConfig(max_sim_time=20.0, eval_interval_s=5.0, seed=2)
    return scenario, workload, config


class TestRunTrainer:
    def test_basic_run(self, setup):
        scenario, workload, config = setup
        result = run_trainer("adpsgd", scenario, workload, config)
        assert result.algorithm == "adpsgd"
        assert len(result.history) > 0

    def test_worker_count_mismatch_rejected(self, setup):
        scenario, _, config = setup
        workload = make_workload(num_workers=6, num_samples=512, seed=0)
        with pytest.raises(ValueError, match="workers"):
            run_trainer("adpsgd", scenario, workload, config)

    def test_kwargs_forwarded(self, setup):
        scenario, workload, config = setup
        result = run_trainer("netmax", scenario, workload, config, adaptive=False)
        assert result.extras["policies_adopted"] == 0


class TestRunComparison:
    def test_all_algorithms_present(self, setup):
        scenario, workload, config = setup
        results = run_comparison(["adpsgd", "allreduce"], scenario, workload, config)
        assert list(results) == ["adpsgd", "allreduce"]

    def test_runs_independent(self, setup):
        """A first run must not affect a second (no shared mutable state)."""
        scenario, workload, config = setup
        solo = run_trainer("allreduce", scenario, workload, config, seed_offset=1)
        paired = run_comparison(["adpsgd", "allreduce"], scenario, workload, config)
        np.testing.assert_array_equal(
            solo.history.as_arrays()["train_loss"],
            paired["allreduce"].history.as_arrays()["train_loss"],
        )

    def test_per_algorithm_kwargs(self, setup):
        scenario, workload, config = setup
        results = run_comparison(
            ["netmax"], scenario, workload, config,
            trainer_kwargs={"netmax": {"adaptive": False}},
        )
        assert results["netmax"].extras["policies_adopted"] == 0


def fake_result(losses, times):
    history = TrainingHistory()
    for t, loss in zip(times, losses):
        history.add(t, 0, 0.0, loss)
    return TrainingResult(
        algorithm="fake",
        history=history,
        costs=EpochCostTracker(1),
        final_params=np.zeros((1, 2)),
        sim_time=times[-1],
        global_steps=1,
    )


class TestSpeedups:
    def test_explicit_target(self):
        results = {
            "fast": fake_result([2.0, 0.5], [0.0, 10.0]),
            "slow": fake_result([2.0, 0.5], [0.0, 40.0]),
        }
        speedups = time_to_loss_speedups(results, "slow", target_loss=0.5)
        assert speedups["fast"] == pytest.approx(4.0)
        assert speedups["slow"] == pytest.approx(1.0)

    def test_default_target_is_worst_final_loss(self):
        results = {
            "a": fake_result([2.0, 0.2], [0.0, 10.0]),
            "b": fake_result([2.0, 0.8], [0.0, 30.0]),  # worst final = 0.8
        }
        speedups = time_to_loss_speedups(results, "b")
        # 'a' reaches 0.8 somewhere before its 0.2 point -> finite speedup.
        assert speedups["a"] >= 1.0

    def test_unreached_target_is_nan(self):
        results = {
            "a": fake_result([2.0, 1.5], [0.0, 10.0]),
            "b": fake_result([2.0, 0.1], [0.0, 10.0]),
        }
        speedups = time_to_loss_speedups(results, "b", target_loss=0.5)
        assert np.isnan(speedups["a"])

    def test_unknown_reference_rejected(self):
        with pytest.raises(KeyError, match="reference"):
            time_to_loss_speedups({"a": fake_result([1.0], [0.0])}, "zzz")
