"""Unit tests for reporting helpers."""

import numpy as np
import pytest

from repro.experiments.reporting import (
    downsample_series,
    format_mean_std,
    format_seconds,
    render_table,
)


class TestRenderTable:
    def test_contains_headers_and_cells(self):
        text = render_table(["name", "value"], [["a", 1.234], ["b", 5.0]])
        assert "name" in text
        assert "1.234" in text
        assert "5.000" in text

    def test_title_prepended(self):
        text = render_table(["x"], [[1.0]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_nan_and_inf_rendering(self):
        text = render_table(["v"], [[float("nan")], [float("inf")]])
        assert "-" in text
        assert "inf" in text

    def test_alignment_consistent(self):
        text = render_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = text.splitlines()
        assert len(lines[-1]) == len(lines[-2])

    def test_empty_rows_ok(self):
        text = render_table(["a", "b"], [])
        assert "a" in text


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "value,expected",
        [(5.0, "5.0s"), (119.0, "119.0s"), (600.0, "10.0min"), (7200.0, "2.0h")],
    )
    def test_units(self, value, expected):
        assert format_seconds(value) == expected

    def test_nan_and_inf(self):
        assert format_seconds(float("nan")) == "-"
        assert format_seconds(float("inf")) == "inf"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_seconds(-1.0)


class TestDownsample:
    def test_short_series_untouched(self):
        x = np.arange(5.0)
        out_x, out_y = downsample_series(x, x, 10)
        np.testing.assert_array_equal(out_x, x)

    def test_long_series_thinned_keeping_endpoints(self):
        x = np.arange(100.0)
        out_x, _ = downsample_series(x, x, 10)
        assert len(out_x) <= 10
        assert out_x[0] == 0.0
        assert out_x[-1] == 99.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            downsample_series(np.arange(3.0), np.arange(4.0), 2)


class TestFormatMeanStd:
    def test_band(self):
        assert format_mean_std(0.0123, 0.0008) == "0.0123+-0.0008"

    def test_nan_mean_renders_dash(self):
        assert format_mean_std(float("nan"), 0.1) == "-"

    def test_nan_std_omits_band(self):
        assert format_mean_std(1.5, float("nan")) == "1.5"

    def test_zero_std_omits_band(self):
        """A single seed measures no spread: no misleading +-0 band."""
        assert format_mean_std(1.5, 0.0) == "1.5"

    def test_custom_format(self):
        assert format_mean_std(1.23456, 0.5, float_format="{:.1f}") == "1.2+-0.5"
