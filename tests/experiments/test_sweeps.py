"""Unit and property tests for the sweep engine."""

import numpy as np
import pytest

import hashlib
import json

from repro.experiments.sweeps import (
    CACHE_VERSION,
    ResultCache,
    RunSpec,
    ScenarioSpec,
    SweepSpec,
    WorkloadSpec,
    aggregate_sweep,
    parallel_map,
    run_sweep,
)

# The trailing cell_time_* columns are measured wall clock -- everything
# before them is deterministic, so backend/cache comparisons slice them off.
METRIC_COLUMNS = 9


def metric_rows(output):
    return [row[:METRIC_COLUMNS] for row in output.rows]


def tiny_spec(**overrides) -> SweepSpec:
    defaults = dict(
        algorithms=("adpsgd", "allreduce"),
        seeds=(0, 1),
        scenarios=(ScenarioSpec("heterogeneous", 4),),
        workload=WorkloadSpec(model="mobilenet", dataset="mnist",
                              batch_size=32, num_samples=256),
        run=RunSpec(max_sim_time=10.0, eval_interval_s=5.0),
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


def assert_results_identical(a, b):
    """Bit-identical histories and final parameters."""
    arrays_a, arrays_b = a.history.as_arrays(), b.history.as_arrays()
    for column in arrays_a:
        np.testing.assert_array_equal(arrays_a[column], arrays_b[column])
    np.testing.assert_array_equal(a.final_params, b.final_params)


class TestSpecs:
    def test_grid_expansion(self):
        spec = tiny_spec(
            scenarios=(ScenarioSpec("heterogeneous", 4),
                       ScenarioSpec("homogeneous", 4)),
        )
        cells = spec.cells()
        assert len(cells) == 2 * 2 * 2  # scenarios x algorithms x seeds
        assert cells == spec.cells()  # deterministic order

    def test_unknown_scenario_kind_rejected(self):
        with pytest.raises(ValueError, match="scenario kind"):
            ScenarioSpec("mesh", 4)

    def test_multi_cloud_worker_count_rejected_at_spec_time(self):
        """An unrunnable grid must fail at construction, not mid-sweep."""
        with pytest.raises(ValueError, match="6 workers"):
            ScenarioSpec("multi-cloud", 8)
        assert ScenarioSpec("multi-cloud", 6).build(0).num_workers == 6

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="algorithm"):
            tiny_spec(algorithms=())
        with pytest.raises(ValueError, match="seed"):
            tiny_spec(seeds=())

    def test_unknown_lr_spec_rejected(self):
        with pytest.raises(ValueError, match="lr spec"):
            RunSpec(lr=("cosine", 0.1)).build(0)

    def test_lr_specs_map_to_schedules(self):
        assert RunSpec(lr=("constant", 0.05)).build(0).lr_schedule.lr(10) == 0.05
        step = RunSpec(lr=("step", 0.1, 5.0)).build(0).lr_schedule
        assert step.lr(6.0) == pytest.approx(0.01)

    def test_cache_key_stable_and_sensitive(self):
        cell = tiny_spec().cells()[0]
        same = tiny_spec().cells()[0]
        assert cell.cache_key() == same.cache_key()
        other = tiny_spec(seeds=(7, 1)).cells()[0]
        assert cell.cache_key() != other.cache_key()
        other_run = tiny_spec(run=RunSpec(max_sim_time=11.0)).cells()[0]
        assert cell.cache_key() != other_run.cache_key()


class TestParallelMap:
    def test_sequential_path(self):
        assert parallel_map(str, [1, 2, 3], parallel=0) == ["1", "2", "3"]

    def test_parallel_path_preserves_order(self):
        assert parallel_map(abs, [-3, 2, -1], parallel=2) == [3, 2, 1]

    def test_single_item_stays_in_process(self):
        calls = []
        assert parallel_map(calls.append, [1], parallel=4) == [None]
        assert calls == [1]  # ran in this process, not a pool


class TestRunSweep:
    @pytest.fixture(scope="class")
    def sequential(self):
        return run_sweep(tiny_spec(), parallel=0)

    def test_all_cells_executed(self, sequential):
        assert len(sequential) == 4
        assert sequential.cells_executed == 4
        assert sequential.cells_from_cache == 0

    def test_parallel_equals_sequential(self, sequential):
        """The property the whole engine is built around."""
        parallel = run_sweep(tiny_spec(), parallel=2)
        for a, b in zip(sequential.outcomes, parallel.outcomes):
            assert a.cell == b.cell
            assert_results_identical(a.result, b.result)

    def test_rerun_is_deterministic(self, sequential):
        again = run_sweep(tiny_spec(), parallel=0)
        for a, b in zip(sequential.outcomes, again.outcomes):
            assert_results_identical(a.result, b.result)

    def test_result_for(self, sequential):
        cell = tiny_spec().cells()[0]
        assert sequential.result_for(cell).algorithm == cell.algorithm
        with pytest.raises(KeyError):
            sequential.result_for(tiny_spec(seeds=(9,)).cells()[0])

    def test_cache_roundtrip(self, sequential, tmp_path):
        fresh = run_sweep(tiny_spec(), cache_dir=str(tmp_path))
        assert fresh.cells_from_cache == 0
        cached = run_sweep(tiny_spec(), cache_dir=str(tmp_path))
        assert cached.cells_from_cache == 4
        assert cached.cells_executed == 0
        for a, b in zip(fresh.outcomes, cached.outcomes):
            assert_results_identical(a.result, b.result)
        # Cached results equal a from-scratch sequential run too.
        for a, b in zip(sequential.outcomes, cached.outcomes):
            assert_results_identical(a.result, b.result)

    def test_force_reruns_cached_cells(self, tmp_path):
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0,))
        run_sweep(spec, cache_dir=str(tmp_path))
        forced = run_sweep(spec, cache_dir=str(tmp_path), force=True)
        assert forced.cells_from_cache == 0

    def test_completed_cells_cached_despite_later_failure(self, tmp_path):
        """A crash partway through a sweep must not discard finished cells."""
        spec = tiny_spec(algorithms=("adpsgd", "nonexistent"), seeds=(0,))
        with pytest.raises(KeyError, match="unknown algorithm"):
            run_sweep(spec, cache_dir=str(tmp_path))
        # The adpsgd cell ran first (grid order) and must already be stored.
        assert len(ResultCache(str(tmp_path))) == 1
        recovered = run_sweep(tiny_spec(algorithms=("adpsgd",), seeds=(0,)),
                              cache_dir=str(tmp_path))
        assert recovered.cells_from_cache == 1

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        spec = tiny_spec(algorithms=("adpsgd",), seeds=(0,))
        run_sweep(spec, cache_dir=str(tmp_path))
        key = spec.cells()[0].cache_key()
        cache = ResultCache(str(tmp_path))
        with open(cache.path(key), "wb") as handle:
            handle.write(b"not a pickle")
        recovered = run_sweep(spec, cache_dir=str(tmp_path))
        assert recovered.cells_from_cache == 0
        assert recovered.cells_executed == 1


class TestAggregate:
    def test_rows_per_algorithm_scenario(self):
        sweep = run_sweep(tiny_spec(), parallel=0)
        output = aggregate_sweep(sweep)
        assert {row[0] for row in output.rows} == {"adpsgd", "allreduce"}
        by_algorithm = output.row_dict()
        assert by_algorithm["adpsgd"][2] == 2  # seeds aggregated
        assert np.isfinite(by_algorithm["adpsgd"][3])  # loss mean

    def test_aggregation_independent_of_backend(self, tmp_path):
        seq = aggregate_sweep(run_sweep(tiny_spec(), parallel=0))
        par = aggregate_sweep(run_sweep(tiny_spec(), parallel=2))
        run_sweep(tiny_spec(), cache_dir=str(tmp_path))  # populate the cache
        cached = aggregate_sweep(run_sweep(tiny_spec(), cache_dir=str(tmp_path)))
        assert metric_rows(seq) == metric_rows(par)
        assert metric_rows(seq) == metric_rows(cached)


class TestVarianceBands:
    """Per-seed variance bands in the aggregation tables (seed spread)."""

    def test_every_metric_carries_a_std_column(self):
        output = aggregate_sweep(run_sweep(tiny_spec()))
        assert output.headers == [
            "algorithm", "scenario", "seeds",
            "final_loss_mean", "final_loss_std",
            "best_acc_mean", "best_acc_std",
            "epoch_time_mean", "epoch_time_std",
            "cell_time_mean", "cell_time_std",
        ]
        for row in output.rows:
            loss_std, acc_std, epoch_std = row[4], row[6], row[8]
            assert loss_std >= 0.0 and epoch_std >= 0.0
            assert np.isnan(acc_std) or acc_std >= 0.0

    def test_cell_time_telemetry_columns(self, tmp_path):
        """Executed groups report their measured wall clock; fully
        cache-served groups have no fresh measurement and render NaN."""
        fresh = aggregate_sweep(run_sweep(tiny_spec(), cache_dir=str(tmp_path)))
        for row in fresh.rows:
            assert row[9] > 0.0 and row[10] >= 0.0
        cached = aggregate_sweep(run_sweep(tiny_spec(), cache_dir=str(tmp_path)))
        for row in cached.rows:
            assert np.isnan(row[9]) and np.isnan(row[10])

    def test_std_measures_across_seed_spread(self):
        """Two seeds with different outcomes yield a positive sample std; a
        single seed measures no spread, so every std column is NaN (rendered
        band-free) rather than a misleading zero."""
        multi = aggregate_sweep(run_sweep(tiny_spec()))
        single = aggregate_sweep(run_sweep(tiny_spec(seeds=(0,))))
        multi_row = multi.row_dict()["adpsgd"]
        single_row = single.row_dict()["adpsgd"]
        assert multi_row[2] == 2 and single_row[2] == 1
        assert multi_row[4] > 0.0
        assert np.isnan(single_row[4]) and np.isnan(single_row[8])

    def test_std_uses_bessel_correction(self):
        """The seed spread is the ddof=1 sample estimator: for two seeds,
        std == |a - b| / sqrt(2), not the population |a - b| / 2."""
        result = run_sweep(tiny_spec())
        output = aggregate_sweep(result)
        losses = [
            cell.result.history.final_loss()
            for cell in result.outcomes
            if cell.cell.algorithm == "adpsgd"
        ]
        assert len(losses) == 2
        expected = abs(losses[0] - losses[1]) / np.sqrt(2.0)
        assert output.row_dict()["adpsgd"][4] == pytest.approx(expected, rel=1e-12)


class TestScenarioParams:
    """Per-cell scenario parameter grids (the dynamic-scenario subsystem)."""

    def test_cache_keys_differ_across_scenario_params(self):
        base = tiny_spec(scenarios=(ScenarioSpec("trace-diurnal", 4),)).cells()[0]
        tuned = tiny_spec(scenarios=(
            ScenarioSpec("trace-diurnal", 4, params=(("amplitude", 0.9),)),
        )).cells()[0]
        other = tiny_spec(scenarios=(
            ScenarioSpec("trace-diurnal", 4, params=(("amplitude", 0.2),)),
        )).cells()[0]
        assert len({base.cache_key(), tuned.cache_key(), other.cache_key()}) == 3

    def test_params_canonicalized_for_cache_stability(self):
        """String-spelled values and any key order hash identically."""
        a = ScenarioSpec("churn", 4, params=(("downtime_s", "10"), ("num_departures", 1)))
        b = ScenarioSpec("churn", 4, params=(("num_departures", "1"), ("downtime_s", 10.0)))
        assert a == b
        assert a.params == (("downtime_s", 10.0), ("num_departures", 1))
        cell_a = tiny_spec(algorithms=("adpsgd",), scenarios=(a,)).cells()[0]
        cell_b = tiny_spec(algorithms=("adpsgd",), scenarios=(b,)).cells()[0]
        assert cell_a.cache_key() == cell_b.cache_key()

    def test_unknown_param_fails_at_spec_time(self):
        with pytest.raises(ValueError, match="no parameter"):
            ScenarioSpec("trace-diurnal", 4, params=(("warp", 9),))

    def test_label_includes_params(self):
        spec = ScenarioSpec("trace-burst", 4, params=(("burst_probability", 0.5),))
        assert spec.label() == "trace-burst-4w[burst_probability=0.5]"

    def test_parallel_equals_sequential_with_trace_scenario(self):
        spec = tiny_spec(
            algorithms=("adpsgd",),
            scenarios=(ScenarioSpec("trace-random-walk", 4,
                                    params=(("duration_s", 10.0), ("step_s", 1.0))),),
        )
        seq = run_sweep(spec, parallel=0)
        par = run_sweep(spec, parallel=2)
        for a, b in zip(seq.outcomes, par.outcomes):
            assert_results_identical(a.result, b.result)

    def test_parallel_equals_sequential_with_churn_scenario(self):
        spec = tiny_spec(
            algorithms=("adpsgd", "netmax"),
            scenarios=(ScenarioSpec("churn", 4, params=(
                ("horizon_s", 10.0), ("downtime_s", 3.0), ("num_departures", 1),
            )),),
        )
        seq = run_sweep(spec, parallel=0)
        par = run_sweep(spec, parallel=2)
        for a, b in zip(seq.outcomes, par.outcomes):
            assert a.cell == b.cell
            assert_results_identical(a.result, b.result)

    def test_churn_scenario_cached_equals_fresh(self, tmp_path):
        spec = tiny_spec(
            algorithms=("adpsgd",),
            seeds=(0,),
            scenarios=(ScenarioSpec("churn", 4, params=(
                ("horizon_s", 10.0), ("downtime_s", 3.0), ("num_departures", 1),
            )),),
        )
        fresh = run_sweep(spec, cache_dir=str(tmp_path))
        cached = run_sweep(spec, cache_dir=str(tmp_path))
        assert cached.cells_from_cache == 1
        assert_results_identical(fresh.outcomes[0].result, cached.outcomes[0].result)

    def test_trace_file_without_path_fails_at_spec_time(self):
        """An unrunnable trace-file cell must die at spec construction (and
        therefore in --dry-run), not hours into a sweep."""
        with pytest.raises(ValueError, match="path"):
            ScenarioSpec("trace-file", 4)
        with pytest.raises(ValueError, match="not found"):
            ScenarioSpec("trace-file", 4, params=(("path", "/no/such/trace.json"),))

    def test_churn_scenario_accepts_every_registry_algorithm(self):
        """The synchronous trainers run round-based churn now, so a churn
        grid constructs for the whole registry (the spec-time rejection only
        fires for a hypothetical future supports_churn=False trainer)."""
        from repro.algorithms.registry import trainer_names

        spec = tiny_spec(
            algorithms=tuple(trainer_names()),
            scenarios=(ScenarioSpec("churn", 4),),
        )
        assert len(spec.cells()) == len(trainer_names()) * 2

    def test_topology_axis_cache_key_sensitivity(self):
        """Cells differing only in topology (or only in edge_probability)
        must never share a cache entry."""
        full = tiny_spec(scenarios=(ScenarioSpec("heterogeneous", 4),)).cells()[0]
        ring = tiny_spec(scenarios=(
            ScenarioSpec("heterogeneous", 4, params=(("topology", "ring"),)),
        )).cells()[0]
        star = tiny_spec(scenarios=(
            ScenarioSpec("heterogeneous", 4, params=(("topology", "star"),)),
        )).cells()[0]
        sparse = tiny_spec(scenarios=(
            ScenarioSpec("heterogeneous", 4,
                         params=(("topology", "random"), ("edge_probability", 0.1))),
        )).cells()[0]
        dense = tiny_spec(scenarios=(
            ScenarioSpec("heterogeneous", 4,
                         params=(("topology", "random"), ("edge_probability", 0.9))),
        )).cells()[0]
        keys = {c.cache_key() for c in (full, ring, star, sparse, dense)}
        assert len(keys) == 5

    def test_topology_default_canonicalized(self):
        """``topology=full`` (the schema default) builds the identical
        scenario and must hash, label, and compare like omitting it."""
        bare = ScenarioSpec("heterogeneous", 4)
        spelled = ScenarioSpec(
            "heterogeneous", 4,
            params=(("topology", "full"), ("edge_probability", 0.25)),
        )
        assert bare == spelled
        assert spelled.params == ()
        assert bare.label() == spelled.label()
        cell_a = tiny_spec(scenarios=(bare,)).cells()[0]
        cell_b = tiny_spec(scenarios=(spelled,)).cells()[0]
        assert cell_a.cache_key() == cell_b.cache_key()

    def test_edge_probability_inert_for_nonrandom_topologies(self):
        """edge_probability only parameterizes the randomized graph kinds;
        a ring cell spelled with any edge_probability builds the identical
        scenario and must hash, label, and compare like one without it."""
        bare = ScenarioSpec("heterogeneous", 4, params=(("topology", "ring"),))
        spelled = ScenarioSpec(
            "heterogeneous", 4,
            params=(("topology", "ring"), ("edge_probability", 0.9)),
        )
        assert bare == spelled
        assert spelled.params == (("topology", "ring"),)
        assert bare.label() == spelled.label()
        cell_a = tiny_spec(scenarios=(bare,)).cells()[0]
        cell_b = tiny_spec(scenarios=(spelled,)).cells()[0]
        assert cell_a.cache_key() == cell_b.cache_key()
        # ...while for a randomized kind the parameter is load-bearing.
        sparse = ScenarioSpec(
            "heterogeneous", 4,
            params=(("topology", "random"), ("edge_probability", 0.9)),
        )
        assert sparse.params == (
            ("edge_probability", 0.9), ("topology", "random"),
        )

    def test_unbuildable_topology_fails_at_spec_time(self):
        with pytest.raises(ValueError, match="torus"):
            ScenarioSpec("heterogeneous", 5, params=(("topology", "torus"),))
        with pytest.raises(ValueError, match="ring"):
            ScenarioSpec("homogeneous", 2, params=(("topology", "ring"),))
        with pytest.raises(ValueError, match="unknown topology"):
            ScenarioSpec("heterogeneous", 4, params=(("topology", "mesh"),))

    def test_cache_version_bump_invalidates_stale_entries(self):
        """Model init moved to the named [seed, _MODEL_INIT_STREAM] stream
        at CACHE_VERSION 5: a key computed under any older version must
        never collide with a current key, so stale v2/v3/v4 cache entries
        can never be served as fresh results."""
        assert CACHE_VERSION == 5
        cell = tiny_spec().cells()[0]
        payload = cell.describe()
        assert payload["cache_version"] == CACHE_VERSION
        for stale_version in (1, 2, 3, 4):
            stale_payload = dict(payload, cache_version=stale_version)
            stale_key = hashlib.sha256(
                json.dumps(stale_payload, sort_keys=True, default=str).encode()
            ).hexdigest()
            assert stale_key != cell.cache_key()

    def test_default_valued_override_hashes_like_omitted(self):
        """Spelling out a schema default builds the identical scenario and
        must therefore produce the identical spec, label, and cache key."""
        bare = ScenarioSpec("trace-diurnal", 4)
        spelled = ScenarioSpec("trace-diurnal", 4, params=(("amplitude", 0.6),))
        assert bare == spelled
        assert spelled.params == ()
        assert bare.label() == spelled.label()
        cell_a = tiny_spec(scenarios=(bare,)).cells()[0]
        cell_b = tiny_spec(scenarios=(spelled,)).cells()[0]
        assert cell_a.cache_key() == cell_b.cache_key()


class TestTopologySweeps:
    """The tentpole acceptance criteria, end to end through the engine."""

    def test_every_algorithm_completes_on_every_topology_family(self):
        """All registry algorithms x {full, ring, star, random} -- each cell
        must finish with finite numbers."""
        from repro.algorithms.registry import trainer_names

        spec = tiny_spec(
            algorithms=tuple(trainer_names()),
            seeds=(0,),
            scenarios=tuple(
                ScenarioSpec("heterogeneous", 4, params=(
                    () if kind == "full" else (("topology", kind),)
                ))
                for kind in ("full", "ring", "star", "random")
            ),
            run=RunSpec(max_sim_time=5.0, eval_interval_s=5.0),
        )
        sweep = run_sweep(spec)
        assert sweep.cells_executed == len(trainer_names()) * 4
        for outcome in sweep.outcomes:
            assert outcome.result.global_steps > 0, outcome.cell.label()
            assert np.isfinite(outcome.result.history.final_loss()), (
                outcome.cell.label()
            )

    def test_sync_churn_parallel_equals_sequential(self):
        spec = tiny_spec(
            algorithms=("allreduce", "prague", "ps-syn", "ps-asyn"),
            seeds=(0,),
            scenarios=(ScenarioSpec("churn", 4, params=(
                ("horizon_s", 10.0), ("downtime_s", 3.0), ("num_departures", 1),
            )),),
        )
        seq = run_sweep(spec, parallel=0)
        par = run_sweep(spec, parallel=2)
        for a, b in zip(seq.outcomes, par.outcomes):
            assert a.cell == b.cell
            assert_results_identical(a.result, b.result)

    def test_sync_churn_cached_equals_fresh(self, tmp_path):
        spec = tiny_spec(
            algorithms=("allreduce", "prague"),
            seeds=(0,),
            scenarios=(ScenarioSpec("churn", 4, params=(
                ("horizon_s", 10.0), ("downtime_s", 3.0), ("num_departures", 1),
            )),),
        )
        fresh = run_sweep(spec, cache_dir=str(tmp_path))
        cached = run_sweep(spec, cache_dir=str(tmp_path))
        assert cached.cells_from_cache == 2
        for a, b in zip(fresh.outcomes, cached.outcomes):
            assert_results_identical(a.result, b.result)

    def test_topology_sweep_parallel_equals_sequential(self):
        spec = tiny_spec(
            algorithms=("netmax",),
            seeds=(0,),
            scenarios=(
                ScenarioSpec("heterogeneous", 4, params=(("topology", "ring"),)),
                ScenarioSpec("heterogeneous", 4, params=(
                    ("topology", "random"), ("edge_probability", 0.4),
                )),
            ),
            run=RunSpec(max_sim_time=5.0, eval_interval_s=5.0),
        )
        seq = run_sweep(spec, parallel=0)
        par = run_sweep(spec, parallel=2)
        for a, b in zip(seq.outcomes, par.outcomes):
            assert_results_identical(a.result, b.result)


class TestCompressionSweeps:
    def test_compression_default_canonicalized(self):
        """``compression=none`` (the schema default) builds the identical
        scenario and must hash, label, and compare like omitting it --
        including dropping the then-inert ``compression_param``."""
        bare = ScenarioSpec("heterogeneous", 4)
        spelled = ScenarioSpec(
            "heterogeneous", 4,
            params=(("compression", "none"), ("compression_param", 0.1)),
        )
        assert bare == spelled
        assert spelled.params == ()
        assert bare.label() == spelled.label()
        cell_a = tiny_spec(scenarios=(bare,)).cells()[0]
        cell_b = tiny_spec(scenarios=(spelled,)).cells()[0]
        assert cell_a.cache_key() == cell_b.cache_key()

    def test_compression_param_load_bearing_for_lossy_ops(self):
        base = ScenarioSpec(
            "heterogeneous", 4, params=(("compression", "topk"),),
        )
        tuned = ScenarioSpec(
            "heterogeneous", 4,
            params=(("compression", "topk"), ("compression_param", 0.01)),
        )
        other = ScenarioSpec(
            "heterogeneous", 4,
            params=(("compression", "topk"), ("compression_param", 0.1)),
        )
        cells = [
            tiny_spec(scenarios=(s,)).cells()[0] for s in (base, tuned, other)
        ]
        assert len({c.cache_key() for c in cells}) == 3
        assert base.has_compression() and not ScenarioSpec(
            "heterogeneous", 4
        ).has_compression()

    def test_bad_compression_fails_at_spec_time(self):
        with pytest.raises(ValueError, match="unknown compression op"):
            ScenarioSpec("heterogeneous", 4, params=(("compression", "gzip"),))
        with pytest.raises(ValueError, match="integral"):
            ScenarioSpec("heterogeneous", 4, params=(
                ("compression", "qsgd"), ("compression_param", 2.5),
            ))

    def test_compressed_sweep_cached_equals_fresh(self, tmp_path):
        spec = tiny_spec(
            algorithms=("adpsgd",),
            seeds=(0,),
            scenarios=(ScenarioSpec("heterogeneous", 4, params=(
                ("compression", "topk"), ("compression_param", 0.1),
            )),),
        )
        fresh = run_sweep(spec, cache_dir=str(tmp_path))
        cached = run_sweep(spec, cache_dir=str(tmp_path))
        assert cached.cells_from_cache == 1
        for a, b in zip(fresh.outcomes, cached.outcomes):
            assert_results_identical(a.result, b.result)

    def test_compressed_sweep_parallel_equals_sequential(self):
        spec = tiny_spec(
            algorithms=("adpsgd", "netmax"),
            seeds=(0,),
            scenarios=(ScenarioSpec("heterogeneous", 4, params=(
                ("compression", "topk"), ("compression_param", 0.1),
            )),),
            run=RunSpec(max_sim_time=5.0, eval_interval_s=5.0),
        )
        seq = run_sweep(spec, parallel=0)
        par = run_sweep(spec, parallel=2)
        for a, b in zip(seq.outcomes, par.outcomes):
            assert_results_identical(a.result, b.result)
