"""Time-varying topology correctness: replay, conservation, re-planning.

The dynamic-edge layer's promises, mirroring the churn suite:

1. **Deterministic replay** -- a flapping-edge run is a pure function of
   its spec: rerunning gives bit-identical histories and final parameters,
   and parallel == sequential == cached through the sweep engine.
2. **Conservation** -- no transfer ever *starts* on a currently-failed
   edge: every begin_transfer's endpoints share a live edge at its start
   time (recorded below the trainers' start_transfer guard, so a code path
   that bypassed the guard would still be caught).
3. **Re-planning** -- the NetMax monitor re-solves on every edge-set
   change, its published policies put zero mass on failed edges, and the
   policy cache turns recurring subgraphs into hits.
"""

import numpy as np
import pytest

from repro.algorithms.base import TrainerConfig
from repro.algorithms.registry import create_trainer
from repro.experiments.harness import run_trainer
from repro.experiments.scenarios import Scenario, build_scenario, make_workload
from repro.experiments.sweeps import (
    RunSpec,
    ScenarioSpec,
    SweepSpec,
    WorkloadSpec,
    run_sweep,
)
from repro.graph.topology import DynamicTopology, EdgeSchedule, Topology
from repro.network.links import StaticLinks

EDGE_ALGORITHMS = ("adpsgd", "saps", "netmax", "adpsgd-monitor")

M = 5


def _scenario(seed: int = 0) -> Scenario:
    return build_scenario(
        "heterogeneous", M, seed=seed, topology="ring",
        edge_failures=3, edge_horizon_s=20.0, edge_downtime_s=3.0,
    )


@pytest.fixture(scope="module")
def problem():
    scenario = _scenario()
    workload = make_workload(
        "mobilenet", "mnist", num_workers=M, batch_size=32, num_samples=256,
        seed=0,
    )
    config = TrainerConfig(max_sim_time=20.0, eval_interval_s=5.0, seed=0)
    return scenario, workload, config


def assert_results_identical(a, b):
    arrays_a, arrays_b = a.history.as_arrays(), b.history.as_arrays()
    for column in arrays_a:
        np.testing.assert_array_equal(arrays_a[column], arrays_b[column])
    np.testing.assert_array_equal(a.final_params, b.final_params)


class TestDeterministicReplay:
    @pytest.mark.parametrize("algorithm", EDGE_ALGORITHMS)
    def test_bit_identical_reruns(self, problem, algorithm):
        scenario, workload, config = problem
        first = run_trainer(algorithm, scenario, workload, config)
        second = run_trainer(algorithm, _scenario(), workload, config)
        assert_results_identical(first, second)
        assert first.extras["edge_events"] == second.extras["edge_events"]
        # 3 failures, each with a repair inside the horizon-or-run window.
        kinds = [kind for _, _, _, kind in first.extras["edge_events"]]
        assert kinds.count("fail") == 3

    def test_edge_log_matches_schedule(self, problem):
        scenario, workload, config = problem
        result = run_trainer("adpsgd", scenario, workload, config)
        schedule = scenario.topology.schedule
        expected = [
            (event.time, event.a, event.b, event.kind)
            for event in schedule.events
            if event.time < config.max_sim_time
        ]
        assert result.extras["edge_events"] == expected


class TestConservation:
    @pytest.mark.parametrize("algorithm", EDGE_ALGORITHMS)
    @pytest.mark.parametrize("overlap", [True, False])
    def test_no_transfer_starts_on_a_failed_edge(self, problem, algorithm, overlap):
        scenario, workload, config = problem
        schedule = scenario.topology.schedule
        trainer = create_trainer(
            algorithm,
            workload.make_tasks(),
            scenario.topology,
            scenario.links,
            workload.profile,
            config,
            test_data=workload.test_data,
            overlap=overlap,
        )
        transfers = []
        original = trainer.comm.begin_transfer

        def recording_begin(receiver, sender, nbytes, time):
            transfers.append((receiver, sender, time))
            return original(receiver, sender, nbytes, time)

        trainer.comm.begin_transfer = recording_begin
        trainer.run()
        assert transfers, "run produced no transfers at all"
        for receiver, sender, time in transfers:
            assert scenario.topology.has_edge_at(receiver, sender, time), (
                f"transfer {sender} -> {receiver} at t={time} started on a "
                "failed edge"
            )
            assert schedule.edge_active_at(receiver, sender, time)

    def test_guard_raises_on_failed_edge(self, problem):
        scenario, workload, config = problem
        trainer = create_trainer(
            "adpsgd",
            workload.make_tasks(),
            scenario.topology,
            scenario.links,
            workload.profile,
            config,
        )
        fail_time, a, b = None, None, None
        for event in scenario.topology.schedule.events:
            if event.kind == "fail":
                fail_time, a, b = event.time, event.a, event.b
                break
        trainer.sim._now = fail_time  # place the clock inside the outage
        trainer._edge_adjacency = scenario.topology.adjacency_at(fail_time)
        trainer._edges_all_up = False
        with pytest.raises(RuntimeError, match="failed edge"):
            trainer.start_transfer(a, b)

    def test_compute_only_when_isolated(self):
        """A worker whose only live edges failed keeps iterating locally.

        Ring of 4, require_connected off: both of worker 0's edges go down
        for a window; the run must survive and worker 0 must keep training
        (compute-only) rather than deadlock or pull over dead links.
        """
        base = Topology.ring(4)
        schedule = EdgeSchedule(
            4,
            [(3.0, 0, 1, "fail"), (3.0, 0, 3, "fail"),
             (9.0, 0, 1, "repair"), (9.0, 0, 3, "repair")],
            require_connected=False,
        )
        topology = DynamicTopology(base, schedule)
        links = StaticLinks(
            np.where(np.eye(4, dtype=bool), np.inf, 2e8), np.zeros((4, 4))
        )
        workload = make_workload(
            "mobilenet", "mnist", num_workers=4, batch_size=32,
            num_samples=256, seed=0,
        )
        config = TrainerConfig(max_sim_time=15.0, eval_interval_s=5.0, seed=0)
        scenario = Scenario(name="isolated", topology=topology, links=links)
        result = run_trainer("adpsgd", scenario, workload, config)
        assert result.global_steps > 0
        assert np.all(np.isfinite(result.final_params))


class TestMonitorReplanning:
    def test_policy_never_weights_failed_edges(self, problem):
        """Every policy published during an outage puts zero mass on the
        down edge, and policies are re-solved at flip times."""
        scenario, workload, config = problem
        trainer = create_trainer(
            "netmax",
            workload.make_tasks(),
            scenario.topology,
            scenario.links,
            workload.profile,
            config,
            test_data=workload.test_data,
            monitor_period_s=4.0,
        )
        published = []
        original = trainer.monitor.tick

        def recording_tick(*args, **kwargs):
            result = original(*args, **kwargs)
            if result is not None:
                published.append((trainer.sim.now, result.policy))
            return result

        trainer.monitor.tick = recording_tick
        trainer.run()
        assert published, "monitor never published"
        flip_times = set(scenario.topology.flip_times())
        solve_times = {time for time, _ in published}
        assert flip_times & solve_times, (
            "no re-solve landed on an edge-flip time"
        )
        for time, policy in published:
            live = scenario.topology.adjacency_at(time)
            off_graph = ~live & ~np.eye(M, dtype=bool)
            assert np.all(policy[off_graph] == 0.0), (
                f"policy at t={time} weights a failed or absent edge"
            )
        # Recurring subgraphs: the run saw both cache activity counters move.
        stats = trainer.monitor.policy_cache.stats
        assert stats.cold_solves > 0

    def test_saps_subgraph_drawn_from_t0_edges(self, problem):
        scenario, workload, config = problem
        trainer = create_trainer(
            "saps",
            workload.make_tasks(),
            scenario.topology,
            scenario.links,
            workload.profile,
            config,
        )
        t0 = scenario.topology.topology_at(0.0)
        for a, b in trainer.fixed_subgraph.edges():
            assert t0.has_edge(a, b)


class TestSweepEngine:
    @staticmethod
    def _spec():
        return SweepSpec(
            algorithms=("adpsgd", "netmax"),
            seeds=(0, 1),
            scenarios=(
                ScenarioSpec(
                    kind="heterogeneous",
                    num_workers=4,
                    params=(
                        ("topology", "ring"),
                        ("edge_failures", 2),
                        ("edge_horizon_s", 10.0),
                        ("edge_downtime_s", 2.0),
                    ),
                ),
            ),
            workload=WorkloadSpec(num_samples=256),
            run=RunSpec(max_sim_time=10.0),
        )

    def test_parallel_equals_sequential(self):
        seq = run_sweep(self._spec(), parallel=0)
        par = run_sweep(self._spec(), parallel=2)
        for a, b in zip(seq.outcomes, par.outcomes):
            assert_results_identical(a.result, b.result)

    def test_cached_equals_fresh(self, tmp_path):
        fresh = run_sweep(self._spec(), cache_dir=str(tmp_path))
        assert fresh.cells_executed == len(fresh)
        cached = run_sweep(self._spec(), cache_dir=str(tmp_path))
        assert cached.cells_from_cache == len(cached)
        for a, b in zip(fresh.outcomes, cached.outcomes):
            assert_results_identical(a.result, b.result)

    def test_sync_algorithms_rejected_at_spec_time(self):
        with pytest.raises(ValueError, match="time-varying"):
            SweepSpec(
                algorithms=("allreduce",),
                seeds=(0,),
                scenarios=self._spec().scenarios,
            )

    def test_edge_params_inert_without_failures(self):
        """edge_downtime_s/edge_horizon_s spelled out at edge_failures=0
        canonicalize away: same cell, same cache key."""
        bare = ScenarioSpec(kind="heterogeneous", num_workers=4)
        spelled = ScenarioSpec(
            kind="heterogeneous",
            num_workers=4,
            params=(("edge_downtime_s", 99.0), ("edge_horizon_s", 123.0)),
        )
        assert spelled == bare
        assert spelled.label() == bare.label()
        assert not spelled.has_dynamic_edges()

    def test_star_with_edge_failures_dies_at_spec_time(self):
        with pytest.raises(ValueError, match="bridge"):
            ScenarioSpec(
                kind="heterogeneous",
                num_workers=4,
                params=(("topology", "star"), ("edge_failures", 1)),
            )


class TestEdgeEventsAxis:
    """The deterministic event-list spelling of the dynamic-edge axis."""

    @staticmethod
    def _spec(script: str = "0-1@3:6;1-2@8:12") -> SweepSpec:
        return SweepSpec(
            algorithms=("adpsgd",),
            seeds=(0,),
            scenarios=(ScenarioSpec(
                kind="heterogeneous",
                num_workers=M,
                params=(("topology", "ring"), ("edge_events", script)),
            ),),
            workload=WorkloadSpec(num_samples=256),
            run=RunSpec(max_sim_time=10.0, eval_interval_s=5.0),
        )

    def test_scripted_run_replays_bit_identically(self):
        a = run_sweep(self._spec())
        b = run_sweep(self._spec())
        for x, y in zip(a.outcomes, b.outcomes):
            assert_results_identical(x.result, y.result)

    def test_cache_key_tracks_the_script(self):
        cell = self._spec().cells()[0]
        moved = self._spec("0-1@3:7;1-2@8:12").cells()[0]
        assert cell.cache_key() != moved.cache_key()

    def test_sync_algorithms_rejected_at_spec_time(self):
        with pytest.raises(ValueError, match="time-varying"):
            SweepSpec(
                algorithms=("ps-syn",),
                seeds=(0,),
                scenarios=self._spec().scenarios,
            )

    def test_conservation_no_transfer_starts_on_a_failed_edge(self):
        """Mirrors the edge_failures conservation check: with a scripted
        schedule the failure windows are known exactly, so no transfer may
        begin on (0, 1) during [3, 6) or on (1, 2) during [8, 12)."""
        scenario = build_scenario(
            "heterogeneous", M, seed=0, topology="ring",
            edge_events="0-1@3:6;1-2@8:12",
        )
        workload = make_workload(
            "mobilenet", "mnist", num_workers=M, batch_size=32,
            num_samples=256, seed=0,
        )
        config = TrainerConfig(max_sim_time=20.0, eval_interval_s=5.0, seed=0)
        trainer = create_trainer(
            "adpsgd",
            workload.make_tasks(),
            scenario.topology,
            scenario.links,
            workload.profile,
            config,
            test_data=workload.test_data,
        )
        transfers = []
        original = trainer.comm.begin_transfer

        def recording_begin(receiver, sender, nbytes, time):
            transfers.append((receiver, sender, time))
            return original(receiver, sender, nbytes, time)

        trainer.comm.begin_transfer = recording_begin
        trainer.run()
        assert transfers, "run produced no transfers at all"
        for receiver, sender, time in transfers:
            assert scenario.topology.has_edge_at(receiver, sender, time), (
                f"transfer {sender} -> {receiver} at t={time} started on a "
                "failed edge"
            )
