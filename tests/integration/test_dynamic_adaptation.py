"""The Fig. 2 story end-to-end: fixed topologies get trapped, NetMax adapts.

A scripted trace keeps the intra-server link (0,1) fast for a brief warmup
-- long enough for SAPS to enshrine it in its fixed subgraph -- then slows
it 100x for the rest of the run. NetMax's monitor measures the change and
pushes the link's probability down to its floor; SAPS keeps gossiping over
it forever (worker 1's only subgraph neighbor is worker 0).
"""

import pytest

from repro import Scenario, Topology, TrainerConfig
from repro.experiments import make_workload, run_trainer
from repro.network.cluster import ClusterSpec
from repro.network.links import TraceLinks

WARMUP = 5.0
RUN_TIME = 240.0


@pytest.fixture(scope="module")
def trap_scenario():
    cluster = ClusterSpec.paper_heterogeneous(4)  # layout (2, 2)
    base = cluster.bandwidth_matrix()
    poisoned = base.copy()
    poisoned[0, 1] = poisoned[1, 0] = base[0, 1] / 100.0
    links = TraceLinks([(0.0, base), (WARMUP, poisoned)], cluster.latency_matrix())
    return Scenario("trap", Topology.fully_connected(4), links)


@pytest.fixture(scope="module")
def workload():
    return make_workload(
        "resnet18", "cifar10", num_workers=4, batch_size=128,
        num_samples=1024, seed=4,
    )


@pytest.fixture(scope="module")
def netmax_result(trap_scenario, workload):
    config = TrainerConfig(max_sim_time=RUN_TIME, eval_interval_s=30.0, seed=4)
    return run_trainer(
        "netmax", trap_scenario, workload, config,
        monitor_period_s=20.0, ema_beta=0.3,
    )


@pytest.fixture(scope="module")
def saps_result(trap_scenario, workload):
    config = TrainerConfig(max_sim_time=RUN_TIME, eval_interval_s=30.0, seed=4)
    return run_trainer("saps", trap_scenario, workload, config)


class TestMonitorAdaptation:
    def test_monitor_publishes_through_the_change(self, netmax_result):
        stats = netmax_result.extras["monitor_stats"]
        assert stats.policies_published >= 3

    def test_policy_pins_slow_link_to_floor(self, netmax_result):
        policy = netmax_result.extras["final_policy"]
        rho = netmax_result.extras["final_rho"]
        floor = 2 * 0.1 * rho  # alpha may have decayed; floor is an upper bound
        assert policy[0, 1] <= max(floor * 2.0, 0.10)
        # The fast inter links keep healthy mass in comparison.
        assert policy[0, 2] + policy[0, 3] > policy[0, 1]

    def test_saps_enshrined_the_poisoned_link(self, saps_result):
        assert (0, 1) in saps_result.extras["fixed_subgraph_edges"]

    def test_netmax_faster_than_trapped_saps(self, netmax_result, saps_result):
        assert (
            netmax_result.costs.summary()["epoch_time"]
            < saps_result.costs.summary()["epoch_time"]
        )

    def test_trapped_worker_progresses_more_under_netmax(
        self, netmax_result, saps_result
    ):
        """SAPS worker 1's only subgraph neighbor is worker 0 over the
        poisoned link, so its epoch count collapses; NetMax's worker 1 keeps
        moving via its other neighbors."""
        netmax_slowest = netmax_result.costs.epochs_completed.min()
        saps_slowest = saps_result.costs.epochs_completed.min()
        assert netmax_slowest > saps_slowest
