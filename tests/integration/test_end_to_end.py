"""End-to-end shape tests: the paper's qualitative claims at small scale.

These use a *static* severe-slow-link network (deterministic, so the shape
assertions are stable) and check the orderings the paper reports rather
than absolute numbers.
"""

import numpy as np
import pytest

from repro import Scenario, Topology, TrainerConfig
from repro.experiments import make_workload, run_comparison, run_trainer
from repro.experiments.scenarios import homogeneous_scenario
from repro.network.cluster import ClusterSpec
from repro.network.links import TraceLinks


@pytest.fixture(scope="module")
def severe_scenario():
    """8 workers, 3 servers, with one inter-server link slowed 40x."""
    cluster = ClusterSpec.paper_heterogeneous(8)
    bandwidth = cluster.bandwidth_matrix()
    bandwidth[0, 3] = bandwidth[3, 0] = bandwidth[0, 3] / 40.0
    links = TraceLinks([(0.0, bandwidth)], cluster.latency_matrix())
    return Scenario("severe", Topology.fully_connected(8), links)


@pytest.fixture(scope="module")
def workload():
    return make_workload(
        "resnet18", "cifar10", num_workers=8, batch_size=128,
        num_samples=2048, seed=1,
    )


@pytest.fixture(scope="module")
def severe_results(severe_scenario, workload):
    config = TrainerConfig(max_sim_time=120.0, eval_interval_s=15.0, seed=5)
    return run_comparison(
        ["netmax", "adpsgd", "allreduce", "prague"],
        severe_scenario,
        workload,
        config,
        trainer_kwargs={"netmax": {"monitor_period_s": 20.0}},
    )


class TestHeterogeneousShape:
    def test_netmax_lowest_epoch_time_among_async(self, severe_results):
        netmax = severe_results["netmax"].costs.summary()["epoch_time"]
        adpsgd = severe_results["adpsgd"].costs.summary()["epoch_time"]
        assert netmax < adpsgd

    def test_computation_cost_equal_across_algorithms(self, severe_results):
        comps = [r.costs.summary()["computation_cost"] for r in severe_results.values()]
        assert max(comps) / min(comps) < 1.2

    def test_prague_suffers_most_from_slow_link(self, severe_results):
        prague = severe_results["prague"].costs.summary()["communication_cost"]
        netmax = severe_results["netmax"].costs.summary()["communication_cost"]
        assert prague > netmax

    def test_netmax_avoids_the_slow_link(self, severe_results):
        policy = severe_results["netmax"].extras.get("final_policy")
        assert policy is not None
        # Probability on the 40x-slowed (0,3) link should sit at/near its
        # floor, i.e. below uniform 1/7.
        assert policy[0, 3] < 1.0 / 7.0

    def test_all_reach_similar_accuracy(self, severe_results):
        accuracies = [
            r.history.best_accuracy() for r in severe_results.values()
        ]
        assert max(accuracies) - min(accuracies) < 0.25


class TestHomogeneousShape:
    @pytest.fixture(scope="class")
    def homo_results(self, workload):
        config = TrainerConfig(max_sim_time=60.0, eval_interval_s=10.0, seed=5)
        return run_comparison(
            ["netmax", "adpsgd", "allreduce", "prague"],
            homogeneous_scenario(8),
            workload,
            config,
        )

    def test_netmax_close_to_adpsgd(self, homo_results):
        """Paper Fig. 9: on homogeneous nets NetMax ~ AD-PSGD."""
        netmax = homo_results["netmax"].costs.summary()["epoch_time"]
        adpsgd = homo_results["adpsgd"].costs.summary()["epoch_time"]
        assert netmax == pytest.approx(adpsgd, rel=0.35)

    def test_sync_methods_costlier_than_async(self, homo_results):
        """Paper Fig. 6: Allreduce/Prague pay extra communication rounds."""
        sync_cost = min(
            homo_results["allreduce"].costs.summary()["communication_cost"],
            homo_results["prague"].costs.summary()["communication_cost"],
        )
        async_cost = max(
            homo_results["netmax"].costs.summary()["communication_cost"],
            homo_results["adpsgd"].costs.summary()["communication_cost"],
        )
        assert sync_cost > async_cost

    def test_homogeneous_comm_cheaper_than_heterogeneous(
        self, homo_results, severe_results
    ):
        """Paper: Fig. 6's communication costs are 'fairly lower' than Fig. 5's."""
        for name in ("netmax", "adpsgd"):
            homo = homo_results[name].costs.summary()["communication_cost"]
            hetero = severe_results[name].costs.summary()["communication_cost"]
            assert homo < hetero


class TestDeterminism:
    def test_full_run_reproducible(self, severe_scenario, workload):
        config = TrainerConfig(max_sim_time=30.0, eval_interval_s=10.0, seed=9)
        a = run_trainer("netmax", severe_scenario, workload, config)
        b = run_trainer("netmax", severe_scenario, workload, config)
        np.testing.assert_array_equal(a.final_params, b.final_params)
        assert a.sim_time == b.sim_time

    def test_different_seeds_differ(self, severe_scenario, workload):
        config_a = TrainerConfig(max_sim_time=30.0, eval_interval_s=10.0, seed=9)
        config_b = TrainerConfig(max_sim_time=30.0, eval_interval_s=10.0, seed=10)
        a = run_trainer("adpsgd", severe_scenario, workload, config_a)
        b = run_trainer("adpsgd", severe_scenario, workload, config_b)
        assert not np.array_equal(a.final_params, b.final_params)
