"""Empirical validation of the paper's convergence theory (Section IV).

Consensus SGD on strongly convex quadratics (which satisfy Assumption 1
exactly) must converge to the joint optimum, approach consensus, and show
the Theorem 1 noise floor scaling. A homogeneous network is used so all
workers iterate at equal rates -- the regime where Lemma 1's uniform
global-step probabilities (and hence the uniform-mean fixed point) hold.
"""

import numpy as np
import pytest

from repro.algorithms import TrainerConfig
from repro.algorithms.netmax import NetMaxTrainer
from repro.experiments.scenarios import homogeneous_scenario, make_quadratic_workload
from repro.ml.optim import ConstantLR, SGDConfig


def run_quadratic_netmax(noise_std=0.0, lr=0.05, max_sim_time=200.0, seed=0, **kwargs):
    tasks, x_star, profile = make_quadratic_workload(
        4, dim=4, noise_std=noise_std, seed=seed
    )
    scenario = homogeneous_scenario(num_workers=4)
    config = TrainerConfig(
        max_sim_time=max_sim_time,
        eval_interval_s=max_sim_time / 10,
        lr_schedule=ConstantLR(lr),
        sgd=SGDConfig(momentum=0.0, weight_decay=0.0),
        seed=seed,
    )
    trainer = NetMaxTrainer(
        tasks, scenario.topology, scenario.links, profile, config, **kwargs
    )
    problems = [task.model for task in tasks]
    return trainer.run(), x_star, problems


class TestConsensusConvergence:
    def test_converges_to_joint_optimum_noiseless(self):
        """Theorem 1 promises a *neighborhood* of x^* whose radius scales
        with alpha; with lr=0.02 the mean must land within a few alpha."""
        result, x_star, _ = run_quadratic_netmax(
            noise_std=0.0, lr=0.02, max_sim_time=500.0
        )
        np.testing.assert_allclose(result.mean_params(), x_star, atol=0.08)

    def test_approaches_consensus(self):
        result, _, _ = run_quadratic_netmax(noise_std=0.0)
        # Constant-lr consensus floor is O(alpha^2 * gradient diversity);
        # the replicas must be far closer than the target spread (~1).
        assert result.consensus_distance() < 0.05

    def test_smaller_lr_tightens_consensus(self):
        """Theorem 1: the stationary deviation shrinks with alpha."""
        coarse, _, _ = run_quadratic_netmax(noise_std=0.0, lr=0.08, seed=3)
        fine, _, _ = run_quadratic_netmax(noise_std=0.0, lr=0.01, seed=3,
                                          max_sim_time=600.0)
        assert fine.consensus_distance() < coarse.consensus_distance()

    def test_noise_floor_scales_with_alpha(self):
        big_lr, x_star, _ = run_quadratic_netmax(noise_std=0.3, lr=0.08, seed=3)
        small_lr, _, _ = run_quadratic_netmax(noise_std=0.3, lr=0.01, seed=3,
                                              max_sim_time=600.0)
        dev_big = float(np.sum((big_lr.final_params - x_star) ** 2))
        dev_small = float(np.sum((small_lr.final_params - x_star) ** 2))
        assert dev_small < dev_big

    def test_mean_local_loss_reaches_theoretical_floor(self):
        """Each worker's loss at x* is positive (x* minimizes the SUM, not
        each f_i); the history should approach that floor, not zero."""
        result, x_star, problems = run_quadratic_netmax(noise_std=0.0)
        floor = float(np.mean(
            [0.5 * (x_star - p.target) @ p.matrix @ (x_star - p.target)
             for p in problems]
        ))
        final_loss = result.history.final_loss()
        assert final_loss == pytest.approx(floor, rel=0.25)

    def test_uniform_ablation_also_converges(self):
        """Any feasible policy converges (Theorem 3) -- incl. uniform."""
        result, x_star, _ = run_quadratic_netmax(
            noise_std=0.0, lr=0.02, max_sim_time=500.0, adaptive=False
        )
        np.testing.assert_allclose(result.mean_params(), x_star, atol=0.08)


class TestDeviationDecay:
    def test_deviation_shrinks_by_orders_of_magnitude(self):
        result, x_star, _ = run_quadratic_netmax(
            noise_std=0.0, lr=0.02, max_sim_time=500.0
        )
        final_dev = float(np.sum((result.final_params - x_star) ** 2))
        initial_dev = float(
            np.sum((np.zeros_like(result.final_params) - x_star) ** 2)
        )
        assert final_dev < 0.05 * initial_dev
