"""Seed-determinism suite: same config + seed => bit-identical results.

Every random stream of a run must derive from the run's own seed and
nothing else. These tests pin the guarantees the sweep engine (and any
caching of results) depends on:

- repeated runs are bit-identical;
- evaluation setup (test data present or absent, larger or smaller) never
  perturbs training randomness;
- the flow-sharing flag draws no randomness of its own;
- per-worker compute jitter streams do not depend on event interleaving.
"""

import numpy as np
import pytest

from repro.algorithms.base import TrainerConfig
from repro.algorithms.registry import create_trainer
from repro.experiments.scenarios import heterogeneous_scenario, make_workload


@pytest.fixture(scope="module")
def setup():
    scenario = heterogeneous_scenario(num_workers=4, seed=3)
    workload = make_workload(
        "mobilenet", "mnist", num_workers=4, batch_size=32,
        num_samples=1600, seed=3,
    )
    config = TrainerConfig(max_sim_time=20.0, eval_interval_s=5.0, seed=3,
                           eval_max_samples=64)
    return scenario, workload, config


def run_once(setup, algorithm, test_data="default", **kwargs):
    scenario, workload, config = setup
    if test_data == "default":
        test_data = workload.test_data
    trainer = create_trainer(
        algorithm,
        workload.make_tasks(),
        scenario.topology,
        scenario.links,
        workload.profile,
        config,
        test_data=test_data,
        **kwargs,
    )
    return trainer.run()


def assert_identical_training(a, b, check_accuracy=True):
    arrays_a, arrays_b = a.history.as_arrays(), b.history.as_arrays()
    for column in arrays_a:
        if column == "test_accuracy" and not check_accuracy:
            continue
        np.testing.assert_array_equal(arrays_a[column], arrays_b[column],
                                      err_msg=f"column {column!r} diverged")
    np.testing.assert_array_equal(a.final_params, b.final_params)
    assert a.sim_time == b.sim_time
    assert a.global_steps == b.global_steps


@pytest.mark.parametrize("algorithm", ["netmax", "adpsgd"])
class TestRepeatedRuns:
    def test_bit_identical_across_runs(self, setup, algorithm):
        first = run_once(setup, algorithm)
        second = run_once(setup, algorithm)
        assert_identical_training(first, second)

    def test_training_invariant_to_test_data(self, setup, algorithm):
        """Providing test data may not perturb any training stream."""
        with_test = run_once(setup, algorithm)
        without = run_once(setup, algorithm, test_data=None)
        assert_identical_training(with_test, without, check_accuracy=False)
        assert np.all(np.isnan(without.history.as_arrays()["test_accuracy"]))

    def test_training_invariant_to_test_data_size(self, setup, algorithm):
        """Shrinking the test set (still above the cap) changes nothing."""
        scenario, workload, config = setup
        features, labels = workload.test_data
        full = run_once(setup, algorithm)
        trimmed = run_once(setup, algorithm,
                           test_data=(features[:100], labels[:100]))
        assert_identical_training(full, trimmed, check_accuracy=False)

    def test_flow_sharing_flag_draws_no_randomness(self, algorithm, setup):
        """With 2 workers no endpoint ever carries two concurrent flows, so
        toggling flow sharing must leave the run bit-identical -- the flag
        gates a formula, never an RNG draw."""
        scenario = heterogeneous_scenario(num_workers=2, seed=3)
        workload = make_workload(
            "mobilenet", "mnist", num_workers=2, batch_size=32,
            num_samples=800, seed=3,
        )
        config = TrainerConfig(max_sim_time=20.0, eval_interval_s=5.0, seed=3,
                               eval_max_samples=64)
        small = (scenario, workload, config)
        shared = run_once(small, algorithm, flow_sharing=True)
        unshared = run_once(small, algorithm, flow_sharing=False)
        assert_identical_training(shared, unshared)


class TestNoDuplicateFinalEval:
    def test_stop_at_eval_event_does_not_double_log(self, setup):
        """A run halting right after an evaluation must not append a second
        history point at the same virtual time (it would also double-feed
        PlateauDecayLR.observe_loss, biasing plateau detection)."""
        scenario, workload, config = setup
        stopped = create_trainer(
            "adpsgd",
            workload.make_tasks(),
            scenario.topology,
            scenario.links,
            workload.profile,
            config.with_overrides(max_events=1),  # exactly the t=0 evaluation
            test_data=workload.test_data,
        )
        result = stopped.run()
        assert len(result.history) == 1
        assert result.history.times == [0.0]

    def test_final_eval_still_appended_when_time_advanced(self, setup):
        result = run_once(setup, "adpsgd")
        times = result.history.times
        assert times[-1] == pytest.approx(20.0)
        assert len(times) == len(set(times))
