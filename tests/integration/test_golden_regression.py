"""Golden regression layer: tiny fixed-seed runs pinned to exact outcomes.

The determinism tests (``test_determinism.py``) assert a run equals a rerun
*within one code version*; they cannot notice when a refactor silently
shifts an RNG stream or reorders simulator events -- both reruns drift
together. These tests pin the *absolute* numbers of a tiny run per
algorithm, so any change to trainer numerics, stream layout, or event
ordering fails loudly and has to be acknowledged by regenerating the
constants below (and bumping the sweep engine's CACHE_VERSION, which such a
change almost always requires).

Iteration counts and history lengths are exact (they are event-ordering
facts); losses use a tight relative tolerance that forgives last-ulp BLAS
differences across machines but not stream drift (any RNG change moves the
loss by orders of magnitude more than 1e-5).

Regenerate with::

    PYTHONPATH=src python -c "import tests.integration.test_golden_regression as g; g.regenerate()"
"""

import numpy as np
import pytest

from repro.algorithms.base import TrainerConfig
from repro.algorithms.registry import trainer_names
from repro.experiments.harness import run_trainer
from repro.experiments.scenarios import build_scenario, make_workload

LOSS_RTOL = 1e-5

# algorithm -> (final_loss, global_steps, history_length)
# Regenerated for CACHE_VERSION 5: model init moved to the named
# [seed, _MODEL_INIT_STREAM] stream (iteration counts unchanged -- only the
# initial parameters shifted, never the event ordering).
GOLDEN_HETEROGENEOUS = {
    "adpsgd": (0.0005029232409516229, 249, 3),
    "adpsgd-monitor": (0.002111469965950815, 238, 3),
    "allreduce": (0.000638512198388245, 180, 3),
    "netmax": (0.0014027396847769882, 238, 3),
    "prague": (0.0009968320159676664, 151, 3),
    "ps-asyn": (0.05429231332078401, 181, 3),
    "ps-syn": (0.0010909298863902355, 140, 3),
    "saps": (0.0007540450163826507, 632, 3),
}

GOLDEN_RING = {
    "adpsgd": (0.0004371251482318499, 328, 3),
    "netmax": (0.0012151540702024877, 314, 3),
    "saps": (0.0003100645392610208, 629, 3),
}

GOLDEN_CHURN = {
    "adpsgd": (0.0006650173538089901, 236, 3),
    "netmax": (0.0015435015976180595, 210, 3),
    "allreduce": (0.0005460230229684824, 170, 3),
    "prague": (0.0010277140579541624, 152, 3),
    "ps-syn": (0.0009170962224481592, 129, 3),
    "ps-asyn": (0.1375099393397236, 167, 3),
}

# The time-varying topology subsystem (edge fail/repair on a ring): pins the
# edge-flip event ordering, the [seed, _EDGE_FLIP_STREAM] schedule stream,
# and -- for the monitor-driven trainers -- the flip-triggered re-solve path
# through the quantized policy cache.
GOLDEN_EDGE_FAILURES = {
    "adpsgd": (0.0005023846464405539, 440, 3),
    "adpsgd-monitor": (0.0007387127981043338, 625, 3),
    "netmax": (0.0007615917956034159, 625, 3),
    "saps": (0.00019061864292507959, 849, 3),
}


def _workload():
    return make_workload(
        "mobilenet", "mnist", num_workers=4, batch_size=32, num_samples=256,
        seed=0,
    )


def _config():
    return TrainerConfig(max_sim_time=10.0, eval_interval_s=5.0, seed=0)


def _scenarios():
    return {
        "heterogeneous": (
            build_scenario("heterogeneous", 4, seed=0), GOLDEN_HETEROGENEOUS
        ),
        "ring": (
            build_scenario("heterogeneous", 4, seed=0, topology="ring"),
            GOLDEN_RING,
        ),
        "churn": (
            build_scenario("churn", 4, seed=0, horizon_s=10.0, downtime_s=3.0,
                           num_departures=1),
            GOLDEN_CHURN,
        ),
        "edge-failures": (
            build_scenario("heterogeneous", 4, seed=0, topology="ring",
                           edge_failures=2, edge_horizon_s=10.0,
                           edge_downtime_s=2.0),
            GOLDEN_EDGE_FAILURES,
        ),
    }


def _check(result, golden, label):
    loss, steps, history_len = golden
    assert result.global_steps == steps, (
        f"{label}: iteration count drifted {steps} -> {result.global_steps} "
        "(RNG-stream or event-ordering change; regenerate the goldens AND "
        "bump CACHE_VERSION if intentional)"
    )
    assert len(result.history.times) == history_len, label
    assert result.history.final_loss() == pytest.approx(loss, rel=LOSS_RTOL), (
        f"{label}: final loss drifted {loss} -> {result.history.final_loss()}"
    )
    assert np.all(np.isfinite(result.final_params)), label


def test_golden_covers_every_algorithm():
    """A new registry algorithm must get a golden pin before it ships."""
    assert set(GOLDEN_HETEROGENEOUS) == set(trainer_names())


@pytest.mark.parametrize("algorithm", sorted(GOLDEN_HETEROGENEOUS))
def test_golden_heterogeneous(algorithm):
    scenario, golden = _scenarios()["heterogeneous"]
    result = run_trainer(algorithm, scenario, _workload(), _config())
    _check(result, golden[algorithm], f"{algorithm}/heterogeneous")


@pytest.mark.parametrize("algorithm", sorted(GOLDEN_RING))
def test_golden_ring_topology(algorithm):
    scenario, golden = _scenarios()["ring"]
    result = run_trainer(algorithm, scenario, _workload(), _config())
    _check(result, golden[algorithm], f"{algorithm}/ring")


@pytest.mark.parametrize("algorithm", sorted(GOLDEN_CHURN))
def test_golden_churn(algorithm):
    scenario, golden = _scenarios()["churn"]
    result = run_trainer(algorithm, scenario, _workload(), _config())
    _check(result, golden[algorithm], f"{algorithm}/churn")


@pytest.mark.parametrize("algorithm", sorted(GOLDEN_EDGE_FAILURES))
def test_golden_edge_failures(algorithm):
    scenario, golden = _scenarios()["edge-failures"]
    result = run_trainer(algorithm, scenario, _workload(), _config())
    _check(result, golden[algorithm], f"{algorithm}/edge-failures")


def regenerate():  # pragma: no cover - maintenance helper
    """Print fresh golden dicts (run after an intentional numerics change)."""
    for name, (scenario, golden) in _scenarios().items():
        print(f"# {name}")
        for algorithm in sorted(golden):
            r = run_trainer(algorithm, scenario, _workload(), _config())
            print(f'    "{algorithm}": ({r.history.final_loss()!r}, '
                  f'{r.global_steps}, {len(r.history.times)}),')
