"""Golden regression layer: tiny fixed-seed runs pinned to exact outcomes.

The determinism tests (``test_determinism.py``) assert a run equals a rerun
*within one code version*; they cannot notice when a refactor silently
shifts an RNG stream or reorders simulator events -- both reruns drift
together. These tests pin the *absolute* numbers of a tiny run per
algorithm, so any change to trainer numerics, stream layout, or event
ordering fails loudly and has to be acknowledged by regenerating the
constants below (and bumping the sweep engine's CACHE_VERSION, which such a
change almost always requires).

Iteration counts and history lengths are exact (they are event-ordering
facts); losses use a tight relative tolerance that forgives last-ulp BLAS
differences across machines but not stream drift (any RNG change moves the
loss by orders of magnitude more than 1e-5).

Regenerate with::

    PYTHONPATH=src python -c "import tests.integration.test_golden_regression as g; g.regenerate()"
"""

import numpy as np
import pytest

from repro.algorithms.base import TrainerConfig
from repro.algorithms.registry import trainer_names
from repro.experiments.harness import run_trainer
from repro.experiments.scenarios import build_scenario, make_workload

LOSS_RTOL = 1e-5

# algorithm -> (final_loss, global_steps, history_length)
GOLDEN_HETEROGENEOUS = {
    "adpsgd": (0.00039109815491897477, 249, 3),
    "adpsgd-monitor": (0.001934834828867497, 238, 3),
    "allreduce": (0.000434358836121454, 180, 3),
    "netmax": (0.0012622664464620487, 238, 3),
    "prague": (0.0006132396606873226, 151, 3),
    "ps-asyn": (0.940861860936269, 181, 3),
    "ps-syn": (0.0005922793284163639, 140, 3),
    "saps": (0.0006641012654479116, 632, 3),
}

GOLDEN_RING = {
    "adpsgd": (0.00032551877107227104, 328, 3),
    "netmax": (0.001168084004951473, 314, 3),
    "saps": (0.0003775325839898658, 629, 3),
}

GOLDEN_CHURN = {
    "adpsgd": (0.0004966665046321841, 236, 3),
    "netmax": (0.0014125268128678016, 210, 3),
    "allreduce": (0.0003990886799178184, 170, 3),
    "prague": (0.0009395638669737708, 152, 3),
    "ps-syn": (0.000574404865466841, 129, 3),
    "ps-asyn": (1.5296634619427647, 167, 3),
}

# The time-varying topology subsystem (edge fail/repair on a ring): pins the
# edge-flip event ordering, the [seed, _EDGE_FLIP_STREAM] schedule stream,
# and -- for the monitor-driven trainers -- the flip-triggered re-solve path
# through the quantized policy cache.
GOLDEN_EDGE_FAILURES = {
    "adpsgd": (0.00040314888840252986, 440, 3),
    "adpsgd-monitor": (0.0007663608046800392, 625, 3),
    "netmax": (0.0007313202287488602, 625, 3),
    "saps": (0.00022386610009738928, 849, 3),
}


def _workload():
    return make_workload(
        "mobilenet", "mnist", num_workers=4, batch_size=32, num_samples=256,
        seed=0,
    )


def _config():
    return TrainerConfig(max_sim_time=10.0, eval_interval_s=5.0, seed=0)


def _scenarios():
    return {
        "heterogeneous": (
            build_scenario("heterogeneous", 4, seed=0), GOLDEN_HETEROGENEOUS
        ),
        "ring": (
            build_scenario("heterogeneous", 4, seed=0, topology="ring"),
            GOLDEN_RING,
        ),
        "churn": (
            build_scenario("churn", 4, seed=0, horizon_s=10.0, downtime_s=3.0,
                           num_departures=1),
            GOLDEN_CHURN,
        ),
        "edge-failures": (
            build_scenario("heterogeneous", 4, seed=0, topology="ring",
                           edge_failures=2, edge_horizon_s=10.0,
                           edge_downtime_s=2.0),
            GOLDEN_EDGE_FAILURES,
        ),
    }


def _check(result, golden, label):
    loss, steps, history_len = golden
    assert result.global_steps == steps, (
        f"{label}: iteration count drifted {steps} -> {result.global_steps} "
        "(RNG-stream or event-ordering change; regenerate the goldens AND "
        "bump CACHE_VERSION if intentional)"
    )
    assert len(result.history.times) == history_len, label
    assert result.history.final_loss() == pytest.approx(loss, rel=LOSS_RTOL), (
        f"{label}: final loss drifted {loss} -> {result.history.final_loss()}"
    )
    assert np.all(np.isfinite(result.final_params)), label


def test_golden_covers_every_algorithm():
    """A new registry algorithm must get a golden pin before it ships."""
    assert set(GOLDEN_HETEROGENEOUS) == set(trainer_names())


@pytest.mark.parametrize("algorithm", sorted(GOLDEN_HETEROGENEOUS))
def test_golden_heterogeneous(algorithm):
    scenario, golden = _scenarios()["heterogeneous"]
    result = run_trainer(algorithm, scenario, _workload(), _config())
    _check(result, golden[algorithm], f"{algorithm}/heterogeneous")


@pytest.mark.parametrize("algorithm", sorted(GOLDEN_RING))
def test_golden_ring_topology(algorithm):
    scenario, golden = _scenarios()["ring"]
    result = run_trainer(algorithm, scenario, _workload(), _config())
    _check(result, golden[algorithm], f"{algorithm}/ring")


@pytest.mark.parametrize("algorithm", sorted(GOLDEN_CHURN))
def test_golden_churn(algorithm):
    scenario, golden = _scenarios()["churn"]
    result = run_trainer(algorithm, scenario, _workload(), _config())
    _check(result, golden[algorithm], f"{algorithm}/churn")


@pytest.mark.parametrize("algorithm", sorted(GOLDEN_EDGE_FAILURES))
def test_golden_edge_failures(algorithm):
    scenario, golden = _scenarios()["edge-failures"]
    result = run_trainer(algorithm, scenario, _workload(), _config())
    _check(result, golden[algorithm], f"{algorithm}/edge-failures")


def regenerate():  # pragma: no cover - maintenance helper
    """Print fresh golden dicts (run after an intentional numerics change)."""
    for name, (scenario, golden) in _scenarios().items():
        print(f"# {name}")
        for algorithm in sorted(golden):
            r = run_trainer(algorithm, scenario, _workload(), _config())
            print(f'    "{algorithm}": ({r.history.final_loss()!r}, '
                  f'{r.global_steps}, {len(r.history.times)}),')
