"""Topology axis end-to-end: trainers honor the scenario graph.

The paper evaluates on complete graphs; the tentpole claim of the topology
axis is that nothing in the stack *assumes* completeness: gossip trainers
select peers only among graph neighbors, every transfer runs along a graph
edge, and NetMax's monitor solves Algorithm 3 on the scenario graph (its
published policy puts zero probability on non-edges).
"""

import numpy as np
import pytest

from repro.algorithms.base import TrainerConfig
from repro.algorithms.registry import create_trainer
from repro.experiments.scenarios import build_scenario, make_workload

GOSSIP_ALGORITHMS = ("adpsgd", "netmax", "saps", "adpsgd-monitor")


def _problem(num_workers=6, topology="ring", seed=0):
    scenario = build_scenario("heterogeneous", num_workers, seed=seed,
                              topology=topology)
    workload = make_workload(
        "mobilenet", "mnist", num_workers=num_workers, batch_size=32,
        num_samples=256, seed=seed,
    )
    config = TrainerConfig(max_sim_time=10.0, eval_interval_s=5.0, seed=seed)
    return scenario, workload, config


class TestGossipRespectsScenarioGraph:
    @pytest.mark.parametrize("algorithm", GOSSIP_ALGORITHMS)
    @pytest.mark.parametrize("topology", ["ring", "star", "random"])
    def test_every_transfer_runs_along_a_graph_edge(self, algorithm, topology):
        """Recorded at the CommunicationModel layer (below peer selection),
        so a trainer that fell back to assuming completeness would be
        caught no matter which code path selected the peer."""
        scenario, workload, config = _problem(topology=topology)
        trainer = create_trainer(
            algorithm,
            workload.make_tasks(),
            scenario.topology,
            scenario.links,
            workload.profile,
            config,
            test_data=workload.test_data,
        )
        transfers = []
        original = trainer.comm.begin_transfer

        def recording_begin(receiver, sender, nbytes, time):
            transfers.append((receiver, sender))
            return original(receiver, sender, nbytes, time)

        trainer.comm.begin_transfer = recording_begin
        trainer.run()
        assert transfers, "run produced no transfers at all"
        for receiver, sender in transfers:
            assert scenario.topology.has_edge(receiver, sender), (
                f"{algorithm} transferred {sender} -> {receiver}, which is "
                f"not an edge of the {topology} scenario graph"
            )

    def test_saps_subgraph_is_a_subgraph_of_the_scenario_graph(self):
        scenario, workload, config = _problem(topology="random")
        trainer = create_trainer(
            "saps",
            workload.make_tasks(),
            scenario.topology,
            scenario.links,
            workload.profile,
            config,
        )
        for a, b in trainer.fixed_subgraph.edges():
            assert scenario.topology.has_edge(a, b)


class TestMonitorRespectsScenarioGraph:
    def test_published_policy_puts_zero_mass_on_non_edges(self):
        """Algorithm 3 runs on the ring's indicator matrix: the published
        policy may only route probability along ring edges (plus the
        self-loop slack p_ii)."""
        scenario, workload, config = _problem(num_workers=4, topology="ring")
        trainer = create_trainer(
            "netmax",
            workload.make_tasks(),
            scenario.topology,
            scenario.links,
            workload.profile,
            config,
            monitor_period_s=2.0,
        )
        result = trainer.run()
        assert trainer.monitor.stats.policies_published > 0, (
            "monitor never published -- the assertion below would be vacuous"
        )
        policy = result.extras["final_policy"]
        adjacency = scenario.topology.adjacency
        off_graph = ~adjacency & ~np.eye(4, dtype=bool)
        np.testing.assert_array_equal(policy[off_graph], 0.0)
        # And the on-graph rows are real distributions over {self} + neighbors.
        np.testing.assert_allclose(policy.sum(axis=1), 1.0, atol=1e-8)
