"""Churn correctness: deterministic replay, conservation, rejoin semantics.

The three properties the churn layer promises:

1. **Deterministic replay** -- a churn run is a pure function of its spec:
   rerunning gives bit-identical histories and final parameters.
2. **Conservation** -- no gossip/flow event ever targets a departed worker:
   every transfer's endpoints are active at the moment it begins.
3. **Rejoin resumes** -- a departed worker's replica is frozen while away
   (nobody writes it) and training continues from exactly that state at its
   rejoin.
"""

import numpy as np
import pytest

from repro.algorithms.adpsgd import ADPSGDTrainer
from repro.algorithms.base import TrainerConfig
from repro.experiments.harness import run_trainer
from repro.experiments.scenarios import (
    build_scenario,
    heterogeneous_scenario,
    make_quadratic_workload,
    make_workload,
)
from repro.graph.topology import Topology
from repro.network.links import StaticLinks
from repro.simulation.churn import ChurnSchedule

CHURN_ALGORITHMS = ("adpsgd", "saps", "netmax", "adpsgd-monitor")
SYNC_ALGORITHMS = ("allreduce", "prague", "ps-syn", "ps-asyn")


@pytest.fixture(scope="module")
def problem():
    scenario = heterogeneous_scenario(4, seed=0)
    workload = make_workload(
        "mobilenet", "mnist", num_workers=4, batch_size=32, num_samples=256, seed=0
    )
    config = TrainerConfig(max_sim_time=20.0, eval_interval_s=5.0, seed=0)
    return scenario, workload, config


def churn_schedule():
    return ChurnSchedule(4, [(4.0, 1, "leave"), (11.0, 1, "join"),
                             (13.0, 3, "leave")])


def assert_results_identical(a, b):
    arrays_a, arrays_b = a.history.as_arrays(), b.history.as_arrays()
    for column in arrays_a:
        np.testing.assert_array_equal(arrays_a[column], arrays_b[column])
    np.testing.assert_array_equal(a.final_params, b.final_params)


class TestDeterministicReplay:
    @pytest.mark.parametrize("algorithm", CHURN_ALGORITHMS)
    def test_bit_identical_reruns(self, problem, algorithm):
        scenario, workload, config = problem
        first = run_trainer(algorithm, scenario, workload, config, churn=churn_schedule())
        second = run_trainer(algorithm, scenario, workload, config, churn=churn_schedule())
        assert_results_identical(first, second)
        assert first.extras["churn_events"] == second.extras["churn_events"]
        assert [kind for _, _, kind in first.extras["churn_events"]] == [
            "leave", "join", "leave"
        ]


class TestConservation:
    @pytest.mark.parametrize("algorithm", CHURN_ALGORITHMS)
    @pytest.mark.parametrize("overlap", [True, False])
    def test_no_transfer_touches_a_departed_worker(self, problem, algorithm, overlap):
        """Every begin_transfer's endpoints are active at its start time.

        Recorded at the CommunicationModel layer (below the trainers'
        start_transfer guard), so a code path that bypassed the guard would
        still be caught, including the serial (overlap=False) pull path
        where the peer may depart during the gradient computation.
        """
        scenario, workload, config = problem
        schedule = churn_schedule()
        from repro.algorithms.registry import create_trainer

        trainer = create_trainer(
            algorithm,
            workload.make_tasks(),
            scenario.topology,
            scenario.links,
            workload.profile,
            config,
            test_data=workload.test_data,
            churn=schedule,
            overlap=overlap,
        )
        transfers = []
        original = trainer.comm.begin_transfer

        def recording_begin(receiver, sender, nbytes, time):
            transfers.append((receiver, sender, time))
            return original(receiver, sender, nbytes, time)

        trainer.comm.begin_transfer = recording_begin
        trainer.run()
        assert transfers, "run produced no transfers at all"
        for receiver, sender, time in transfers:
            active = schedule.active_at(time)
            assert active[receiver] and active[sender], (
                f"transfer {sender} -> {receiver} at t={time} touched a "
                "departed worker"
            )

    def test_guard_raises_on_departed_endpoint(self, problem):
        scenario, workload, config = problem
        trainer = ADPSGDTrainer(
            workload.make_tasks(),
            scenario.topology,
            scenario.links,
            workload.profile,
            config,
            churn=churn_schedule(),
        )
        trainer._active[2] = False
        with pytest.raises(RuntimeError, match="departed"):
            trainer.start_transfer(0, 2)


class RecordingTrainer(ADPSGDTrainer):
    """Captures the departed worker's state at its leave and join edges."""

    def _on_worker_leave(self, worker):
        self.left_params = self.tasks[worker].model.get_params().copy()
        self.left_iterations = self.tasks[worker].iterations
        super()._on_worker_leave(worker)

    def _on_worker_join(self, worker):
        self.join_params = self.tasks[worker].model.get_params().copy()
        self.join_iterations = self.tasks[worker].iterations
        super()._on_worker_join(worker)


class TestRejoinResumes:
    def test_frozen_while_away_and_resumes(self, problem):
        scenario, workload, config = problem
        trainer = RecordingTrainer(
            workload.make_tasks(),
            scenario.topology,
            scenario.links,
            workload.profile,
            config,
            test_data=workload.test_data,
            churn=ChurnSchedule.single(4, worker=1, leave_at=5.0, rejoin_at=14.0),
        )
        trainer.run()
        # Nothing touched the replica or its iteration count while away...
        np.testing.assert_array_equal(trainer.left_params, trainer.join_params)
        assert trainer.left_iterations == trainer.join_iterations
        # ...and training genuinely resumed from that state afterwards.
        final = trainer.tasks[1].model.get_params()
        assert trainer.tasks[1].iterations > trainer.join_iterations
        assert not np.array_equal(final, trainer.join_params)


class TestComputeOnlySurvival:
    def test_leaf_workers_survive_center_departure(self):
        """Star topology: when the hub departs, the leaves have no active
        neighbors and must fall back to compute-only local SGD, not stall."""
        tasks, _, profile = make_quadratic_workload(3, dim=4, seed=0)
        m = 3
        bandwidth = np.full((m, m), 1e8)
        np.fill_diagonal(bandwidth, np.inf)
        links = StaticLinks(bandwidth, np.zeros((m, m)))
        config = TrainerConfig(max_sim_time=30.0, eval_interval_s=10.0, seed=0)
        trainer = ADPSGDTrainer(
            tasks,
            Topology.star(3, center=0),
            links,
            profile,
            config,
            churn=ChurnSchedule.single(3, worker=0, leave_at=2.0, rejoin_at=25.0),
        )
        before = [task.iterations for task in tasks]
        trainer.run()
        # The leaves kept iterating through the long hub outage.
        assert tasks[1].iterations > before[1] + 10
        assert tasks[2].iterations > before[2] + 10
        assert [kind for _, _, kind in trainer.churn_log] == ["leave", "join"]


class TestSynchronousChurn:
    """Round-based churn for allreduce/PS/Prague (the old carve-out is gone):
    membership is the active set at round start, dropped stragglers
    contribute nothing to any aggregate, and rejoiners are re-admitted at
    their next round."""

    @pytest.mark.parametrize("algorithm", SYNC_ALGORITHMS)
    def test_bit_identical_reruns(self, problem, algorithm):
        scenario, workload, config = problem
        first = run_trainer(algorithm, scenario, workload, config, churn=churn_schedule())
        second = run_trainer(algorithm, scenario, workload, config, churn=churn_schedule())
        assert_results_identical(first, second)
        assert first.extras["churn_events"] == second.extras["churn_events"]
        assert [kind for _, _, kind in first.extras["churn_events"]] == [
            "leave", "join", "leave"
        ]

    @pytest.mark.parametrize("algorithm", SYNC_ALGORITHMS)
    def test_no_departed_worker_in_any_aggregate(self, problem, algorithm):
        """Every applied aggregation's membership (round_log) is a subset of
        the schedule's active set at that time -- the sync-trainer analogue
        of the no-transfer-touches-a-departed-worker conservation law."""
        scenario, workload, config = problem
        schedule = churn_schedule()
        from repro.algorithms.registry import create_trainer

        trainer = create_trainer(
            algorithm,
            workload.make_tasks(),
            scenario.topology,
            scenario.links,
            workload.profile,
            config,
            test_data=workload.test_data,
            churn=schedule,
        )
        trainer.run()
        assert trainer.round_log, "run performed no aggregations at all"
        saw_reduced_round = False
        for time, members in trainer.round_log:
            active = schedule.active_at(time)
            for member in members:
                assert active[member], (
                    f"aggregate at t={time} included departed worker {member}"
                )
            if len(members) < trainer.num_workers:
                saw_reduced_round = True
        # The schedule's outage windows overlap training, so renormalized
        # (smaller) aggregates must actually have happened.
        assert saw_reduced_round

    @pytest.mark.parametrize("algorithm", SYNC_ALGORITHMS)
    def test_departed_replica_frozen_and_readmitted(self, problem, algorithm):
        """Worker 1 computes nothing while away (iterations stall) and is
        re-admitted after its rejoin (iterations advance again)."""
        scenario, workload, config = problem
        schedule = churn_schedule()  # worker 1 away on [4, 11)
        from repro.algorithms.registry import create_trainer

        trainer = create_trainer(
            algorithm,
            workload.make_tasks(),
            scenario.topology,
            scenario.links,
            workload.profile,
            config,
            test_data=workload.test_data,
            churn=schedule,
        )
        trainer.run()
        in_window = [
            members for time, members in trainer.round_log if 4.0 <= time < 11.0
        ]
        assert in_window, "no aggregations during the outage window"
        assert all(1 not in members for members in in_window)
        after = [
            members for time, members in trainer.round_log if time >= 11.0
        ]
        assert any(1 in members for members in after), (
            "worker 1 was never re-admitted after its rejoin"
        )

    def test_worker_count_mismatch_rejected(self, problem):
        scenario, workload, config = problem
        with pytest.raises(ValueError, match="churn schedule is for"):
            run_trainer(
                "adpsgd", scenario, workload, config,
                churn=ChurnSchedule.single(6, 1, leave_at=5.0),
            )


class TestChurnOnSparseTopology:
    """Churn x topology: the star-center departure is the worst case -- the
    hub leaves and the active subgraph disconnects entirely. Gossip trainers
    must fall back to compute-only iterations, synchronous trainers must
    keep aggregating over the leaves, and everyone must pick the hub back up
    after its rejoin."""

    @pytest.mark.parametrize("algorithm", ["adpsgd", "netmax", "allreduce", "prague"])
    def test_center_departure_and_rejoin(self, algorithm):
        scenario = build_scenario("heterogeneous", 4, seed=0, topology="star")
        assert scenario.topology.degree(0) == 3  # worker 0 is the hub
        workload = make_workload(
            "mobilenet", "mnist", num_workers=4, batch_size=32, num_samples=256,
            seed=0,
        )
        config = TrainerConfig(max_sim_time=20.0, eval_interval_s=5.0, seed=0)
        from repro.algorithms.registry import create_trainer

        trainer = create_trainer(
            algorithm,
            workload.make_tasks(),
            scenario.topology,
            scenario.links,
            workload.profile,
            config,
            test_data=workload.test_data,
            churn=ChurnSchedule.single(4, worker=0, leave_at=3.0, rejoin_at=15.0),
        )
        result = trainer.run()
        assert [kind for _, _, kind in trainer.churn_log] == ["leave", "join"]
        # The leaves kept training through the hub outage...
        for leaf in (1, 2, 3):
            assert trainer.tasks[leaf].iterations > 10, (
                f"leaf {leaf} stalled during the hub outage"
            )
        # ...and the hub itself trained both before its leave and after its
        # rejoin (it cannot have iterated much in only [0, 3) + [15, 20)).
        assert 0 < trainer.tasks[0].iterations < max(
            trainer.tasks[leaf].iterations for leaf in (1, 2, 3)
        )
        assert np.isfinite(result.history.final_loss())


class TestRejoinDuringInFlightIteration:
    """Regression: a rejoin landing while a pre-departure iteration is still
    in flight must NOT start a second concurrent loop for the worker (the
    stale completion used to reschedule alongside the rejoin's restart,
    permanently doubling the worker's update rate)."""

    def slow_problem(self, trainer_cls, **kwargs):
        tasks, _, profile = make_quadratic_workload(3, dim=4, model="mobilenet", seed=0)
        m = 3
        bandwidth = np.full((m, m), 4e6)  # ~4.2 s per model transfer
        np.fill_diagonal(bandwidth, np.inf)
        links = StaticLinks(bandwidth, np.zeros((m, m)))
        config = TrainerConfig(max_sim_time=40.0, eval_interval_s=10.0, seed=0)
        # Leave at 1.0, rejoin at 2.0: well inside the first ~4 s transfer.
        churn = ChurnSchedule.single(3, worker=1, leave_at=1.0, rejoin_at=2.0)
        return trainer_cls(
            tasks, Topology.fully_connected(3), links, profile, config,
            churn=churn, **kwargs,
        )

    @pytest.mark.parametrize("trainer_cls", [ADPSGDTrainer, None])
    def test_single_loop_after_overlapped_rejoin(self, trainer_cls):
        if trainer_cls is None:
            from repro.algorithms.netmax import NetMaxTrainer
            trainer_cls = NetMaxTrainer
        trainer = self.slow_problem(trainer_cls)
        trainer.run()
        iterations = [task.iterations for task in trainer.tasks]
        # A duplicated loop would give worker 1 roughly 2x its peers'
        # iteration count; a parked-then-resumed loop stays comparable.
        assert iterations[1] <= max(iterations[0], iterations[2]) + 2, iterations

    def test_serial_path_single_loop_too(self):
        trainer = self.slow_problem(ADPSGDTrainer, overlap=False)
        trainer.run()
        iterations = [task.iterations for task in trainer.tasks]
        assert iterations[1] <= max(iterations[0], iterations[2]) + 2, iterations
