"""Property suite (hypothesis) run against EVERY compression op.

The cost model, the scenario axis, and the accuracy-impact hook all lean on
the four-point contract stated in :mod:`repro.network.compression`:

1. **Bounded bytes** -- ``compressed_bytes(profile)`` is a positive int
   that never exceeds the dense ``profile.message_bytes`` (ops model the
   real sender's dense fallback).
2. **Monotone in fidelity** -- more kept coordinates / more bits / more
   layers never shrinks the message, and never *increases*
   ``error_factor``.
3. **Bounded error** -- ``error_factor()`` lies in ``[0, 1)`` and is ``0``
   exactly when the op is lossless (in which case the bytes equal dense:
   "free lossless compression" would be a modeling bug).
4. **Purity** -- both methods are pure: repeated calls agree, and no op
   touches any RNG (the ``none`` path must consume zero draws for the
   bit-identity pin to hold).

The suite is registered per *op*; a completeness test fails if someone
registers a new op in ``COMPRESSION_OPS`` without wiring it in here --
mirroring ``tests/properties/test_topology_invariants.py``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.network.compression import (
    COMPRESSION_OPS,
    CompressionOp,
    Layerwise,
    NoCompression,
    QSGD,
    TopK,
    compression_op_names,
    make_compression_op,
)
from repro.network.costmodel import BYTES_PER_PARAM, MODEL_ZOO, ModelCostProfile

param_counts = st.integers(min_value=1, max_value=200_000_000)
fractions = st.floats(
    min_value=1e-6, max_value=1.0, allow_nan=False, exclude_min=False
)
bit_widths = st.integers(min_value=1, max_value=8 * BYTES_PER_PARAM)


def profile_for(param_count: int) -> ModelCostProfile:
    return ModelCostProfile("synthetic", param_count, compute_time_s=0.1)


# op name -> strategy of op instances. Every registered op must appear here
# (see test_every_registered_op_covered).
OP_STRATEGIES = {
    "none": st.just(NoCompression()),
    "topk": fractions.map(lambda k: TopK(k=k)),
    "qsgd": bit_widths.map(lambda b: QSGD(bits=b)),
    "layerwise": fractions.map(lambda f: Layerwise(fraction=f)),
}

any_op = st.one_of(*OP_STRATEGIES.values())


def test_every_registered_op_covered():
    """Registering an op without invariant coverage fails here."""
    missing = set(COMPRESSION_OPS) - set(OP_STRATEGIES)
    assert not missing, (
        f"compression ops without a property-suite strategy: "
        f"{sorted(missing)} -- add them to OP_STRATEGIES"
    )
    assert compression_op_names() == sorted(OP_STRATEGIES)


def test_every_op_buildable_via_factory_default():
    """make_compression_op(name) must work with the axis default 0.0."""
    for name in COMPRESSION_OPS:
        op = make_compression_op(name)
        assert op.name == name
        assert op.describe().startswith(name)


class TestContract:
    @given(op=any_op, param_count=param_counts)
    @settings(max_examples=200, deadline=None)
    def test_bytes_positive_and_bounded_by_dense(self, op, param_count):
        profile = profile_for(param_count)
        compressed = op.compressed_bytes(profile)
        assert isinstance(compressed, int)
        assert 0 < compressed <= profile.message_bytes

    @given(op=any_op, param_count=param_counts)
    @settings(max_examples=100, deadline=None)
    def test_error_factor_bounded(self, op, param_count):
        eps = op.error_factor()
        assert 0.0 <= eps < 1.0
        if eps == 0.0:
            # Lossless implies dense-sized: no free lunch in the cost model.
            profile = profile_for(param_count)
            assert op.compressed_bytes(profile) == profile.message_bytes

    @given(op=any_op, param_count=param_counts)
    @settings(max_examples=100, deadline=None)
    def test_purity_repeated_calls_agree(self, op, param_count):
        profile = profile_for(param_count)
        assert op.compressed_bytes(profile) == op.compressed_bytes(profile)
        assert op.error_factor() == op.error_factor()

    @given(op=any_op, param_count=param_counts)
    @settings(max_examples=50, deadline=None)
    def test_no_op_touches_global_rng(self, op, param_count):
        """Ops draw nothing: all compression randomness lives in the
        trainer's dedicated per-worker streams."""
        state_before = np.random.get_state()[1].copy()
        op.compressed_bytes(profile_for(param_count))
        op.error_factor()
        op.describe()
        np.testing.assert_array_equal(state_before, np.random.get_state()[1])

    @given(op=any_op)
    @settings(max_examples=50, deadline=None)
    def test_frozen_and_hashable(self, op):
        with pytest.raises(Exception):
            op.name = "mutated"  # frozen dataclasses reject assignment
        assert isinstance(hash(op), int)


class TestMonotoneInFidelity:
    @given(
        lo=fractions, hi=fractions, param_count=param_counts
    )
    @settings(max_examples=100, deadline=None)
    def test_topk_monotone(self, lo, hi, param_count):
        lo, hi = sorted((lo, hi))
        profile = profile_for(param_count)
        assert TopK(k=lo).compressed_bytes(profile) <= TopK(
            k=hi
        ).compressed_bytes(profile)
        assert TopK(k=lo).error_factor() >= TopK(k=hi).error_factor()

    @given(lo=bit_widths, hi=bit_widths, param_count=param_counts)
    @settings(max_examples=100, deadline=None)
    def test_qsgd_monotone(self, lo, hi, param_count):
        lo, hi = sorted((lo, hi))
        profile = profile_for(param_count)
        assert QSGD(bits=lo).compressed_bytes(profile) <= QSGD(
            bits=hi
        ).compressed_bytes(profile)
        assert QSGD(bits=lo).error_factor() >= QSGD(bits=hi).error_factor()

    @given(lo=fractions, hi=fractions, param_count=param_counts)
    @settings(max_examples=100, deadline=None)
    def test_layerwise_monotone(self, lo, hi, param_count):
        lo, hi = sorted((lo, hi))
        profile = profile_for(param_count)
        assert Layerwise(fraction=lo).compressed_bytes(profile) <= Layerwise(
            fraction=hi
        ).compressed_bytes(profile)
        assert (
            Layerwise(fraction=lo).error_factor()
            >= Layerwise(fraction=hi).error_factor()
        )

    def test_full_fidelity_is_lossless_and_dense(self):
        """k=1 / 32 bits / fraction=1 all collapse to the identity op's
        numbers (the dense-fallback cap at work for top-k, whose sparse
        encoding would otherwise *exceed* dense)."""
        for op in (TopK(k=1.0), QSGD(bits=8 * BYTES_PER_PARAM), Layerwise(fraction=1.0)):
            assert op.error_factor() == 0.0
            for profile in MODEL_ZOO.values():
                assert op.compressed_bytes(profile) == profile.message_bytes


class TestValidation:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown compression op"):
            make_compression_op("gzip")

    @pytest.mark.parametrize("bad_k", [0.0, -0.1, 1.5])
    def test_topk_rejects_bad_fraction(self, bad_k):
        with pytest.raises(ValueError, match="topk"):
            make_compression_op("topk", bad_k) if bad_k else TopK(k=bad_k)

    @pytest.mark.parametrize("bad_bits", [0, -1, 33])
    def test_qsgd_rejects_bad_bits(self, bad_bits):
        with pytest.raises(ValueError, match="qsgd"):
            QSGD(bits=bad_bits)

    def test_qsgd_rejects_non_integral_param(self):
        with pytest.raises(ValueError, match="integral"):
            make_compression_op("qsgd", 7.5)

    @pytest.mark.parametrize("bad_fraction", [0.0, -0.5, 2.0])
    def test_layerwise_rejects_bad_fraction(self, bad_fraction):
        with pytest.raises(ValueError, match="layerwise"):
            Layerwise(fraction=bad_fraction)

    def test_none_rejects_any_param(self):
        with pytest.raises(ValueError, match="takes no parameter"):
            make_compression_op("none", 0.5)

    def test_duplicate_registration_rejected(self):
        from repro.network.compression import register_compression_op

        with pytest.raises(ValueError, match="already registered"):
            register_compression_op(NoCompression)


class TestDescribe:
    def test_describe_encodes_the_fidelity_knob(self):
        assert TopK(k=0.05).describe() == "topk0.05"
        assert QSGD(bits=4).describe() == "qsgd4"
        assert Layerwise(fraction=0.25).describe() == "layerwise0.25"
        assert NoCompression().describe() == "none"

    @given(op=any_op)
    @settings(max_examples=50, deadline=None)
    def test_describe_is_scenario_name_safe(self, op):
        label = op.describe()
        assert label and all(c.isalnum() or c in ".-+e" for c in label)
