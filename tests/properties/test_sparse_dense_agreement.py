"""Property suite (hypothesis): the sparse CSR layer agrees with dense.

:class:`~repro.graph.topology.Topology` stores the graph as CSR neighbor
lists and materializes the dense ``adjacency`` lazily. Every query must be
answerable both ways with identical results -- for every ``TOPOLOGY_KINDS``
family (sparse-native constructors) and for every segment of a
:class:`DynamicTopology` (mask-built, never densified). The agreements
pinned here:

- ``neighbors(i)`` == the nonzero columns of dense row ``i``;
- ``edges()``/``num_edges()``/``degree()``/``has_edge()`` == their dense
  reconstructions;
- ``adjacency_view()`` answers ``[a, b]`` and ``[a][b]`` exactly like the
  dense matrix;
- ``edge_signature()`` is representation-independent: a Topology rebuilt
  from the materialized dense matrix (CSR derived *from* dense) hashes and
  compares equal to the sparse-native original;
- ``DynamicTopology``'s at-time-t views (``adjacency_at``/``topology_at``/
  ``has_edge_at``/``edge_signature_at``) agree with each other and with a
  dense round-trip of the live graph.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.topology import (
    TOPOLOGY_KINDS,
    DynamicTopology,
    EdgeSchedule,
    Topology,
    make_topology,
)

workers = st.integers(min_value=4, max_value=12)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _workers_for(kind: str, m: int) -> int:
    """Coerce a drawn worker count into the family's validity domain."""
    if kind == "torus":
        return 4 * (1 + m % 3)  # 4, 8, 12: all factor as rows x cols >= 2
    if kind == "hypercube":
        return 2 ** (2 + m % 2)
    return m


def _assert_sparse_dense_agree(topology: Topology) -> None:
    dense = topology.adjacency  # materializes the lazy dense matrix
    m = topology.num_workers
    assert dense.shape == (m, m) and dense.dtype == bool
    view = topology.adjacency_view()

    expected_edges = [
        (int(a), int(b))
        for a, b in zip(*np.nonzero(np.triu(dense, k=1)))
    ]
    assert topology.edges() == expected_edges
    assert topology.num_edges() == len(expected_edges)

    for i in range(m):
        np.testing.assert_array_equal(
            topology.neighbors(i), np.flatnonzero(dense[i])
        )
        assert topology.degree(i) == int(dense[i].sum())
    for a in range(m):
        for b in range(m):
            assert topology.has_edge(a, b) == bool(dense[a, b])
            assert bool(view[a, b]) == bool(dense[a, b])
            assert bool(view[a][b]) == bool(dense[a, b])

    # Signature/equality are representation-independent: round-tripping
    # through the dense matrix reconstructs an equal graph.
    rebuilt = Topology(dense)
    assert rebuilt.edge_signature() == topology.edge_signature()
    assert rebuilt == topology
    assert hash(rebuilt) == hash(topology)


class TestSparseDenseAgreement:
    @pytest.mark.parametrize("kind", TOPOLOGY_KINDS)
    @given(m=workers, seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_every_topology_kind(self, kind, m, seed):
        topology = make_topology(
            kind, _workers_for(kind, m), edge_probability=0.3, seed=seed
        )
        _assert_sparse_dense_agree(topology)

    @pytest.mark.parametrize("kind", ("random", "expander"))
    @given(m=workers, seed=seeds, skew=st.floats(min_value=0.1, max_value=2.0))
    @settings(max_examples=15, deadline=None)
    def test_degree_skewed_kinds(self, kind, m, seed, skew):
        topology = make_topology(
            kind, m, edge_probability=0.3, seed=seed, degree_skew=skew
        )
        _assert_sparse_dense_agree(topology)

    @given(m=workers, seed=seeds, failures=st.integers(min_value=1, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_dynamic_topology_segments(self, m, seed, failures):
        base = make_topology(("full", "torus", "expander")[seed % 3],
                             _workers_for("torus", m) if seed % 3 == 1 else m,
                             seed=seed)
        schedule = EdgeSchedule.random(
            base, horizon_s=100.0, num_failures=failures,
            downtime_s=10.0, seed=seed,
        )
        dynamic = DynamicTopology(base, schedule)
        probe_times = sorted(
            {0.0, 50.0, 99.0, 150.0}
            | {float(event.time) for event in schedule.events}
            | {float(event.time) + 0.5 for event in schedule.events}
        )
        for t in probe_times:
            live_dense = dynamic.adjacency_at(t)
            segment = dynamic.topology_at(t)
            np.testing.assert_array_equal(segment.adjacency, live_dense)
            _assert_sparse_dense_agree(segment)
            assert dynamic.edge_signature_at(t) == segment.edge_signature()
            assert (
                Topology(live_dense).edge_signature()
                == dynamic.edge_signature_at(t)
            )
            for a, b in base.edges():
                assert dynamic.has_edge_at(a, b, t) == bool(live_dense[a, b])

    @given(m=workers, seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_dense_stays_lazy_for_structured_kinds(self, m, seed):
        """Construction + neighbor/edge queries never touch the dense cache."""
        topology = make_topology("expander", m, seed=seed)
        for i in range(topology.num_workers):
            topology.neighbors(i)
        topology.edges()
        topology.edge_signature()
        topology.is_connected()
        assert topology._dense is None
