"""Property suite (hypothesis) for the time-varying topology substrate.

Trainers and the monitor assume four things about a
:class:`~repro.graph.topology.DynamicTopology`, mirroring the link-model
invariants of ``tests/network/test_link_invariants.py``:

1. **Symmetry at every t** -- ``adjacency_at(t)`` is symmetric with no
   self-loops for all probe times (the live graph stays undirected).
2. **Connectivity where promised** -- with ``require_connected`` every
   segment's live graph satisfies Assumption 1 (and ``EdgeSchedule.random``
   guarantees it by construction, drawing only non-bridge edges).
3. **Pure function of time** -- queries never advance hidden randomness:
   any query order, repeated queries, and fresh instances built from the
   same inputs reproduce the identical graph history (the bit-identical
   replay guarantee rests on this).
4. **Consistency** -- ``adjacency_at``/``topology_at``/``has_edge_at``/
   ``edge_signature_at`` agree with each other and with the schedule's own
   ``down_edges_at`` bookkeeping; the live edge set is always a subset of
   the base graph.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.topology import (
    DynamicTopology,
    EdgeSchedule,
    Topology,
    make_topology,
)

workers = st.integers(min_value=4, max_value=10)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
failure_counts = st.integers(min_value=1, max_value=4)


def _base(m: int, seed: int) -> Topology:
    """A 2-edge-connected base graph (ring + chords) -- every edge failable."""
    kind = ("full", "ring", "torus", "hypercube", "expander")[seed % 5]
    if kind == "torus":
        m = 4 * (1 + m % 3)  # 4, 8, 12: all factor as rows x cols >= 2
    if kind == "hypercube":
        m = 2 ** (2 + m % 2)
    return make_topology(kind, m, seed=seed)


def _dynamic(m: int, seed: int, failures: int) -> DynamicTopology:
    base = _base(m, seed)
    schedule = EdgeSchedule.random(
        base, horizon_s=100.0, num_failures=failures, downtime_s=10.0, seed=seed
    )
    return DynamicTopology(base, schedule)


def _probe_times(dynamic: DynamicTopology) -> list[float]:
    """Times straddling every flip boundary, plus t=0 and a far tail."""
    times = [0.0, 1e6]
    for flip in dynamic.flip_times():
        times.extend([np.nextafter(flip, 0.0), flip, np.nextafter(flip, np.inf)])
    return times


class TestDynamicTopologyInvariants:
    @given(m=workers, seed=seeds, failures=failure_counts)
    @settings(max_examples=30, deadline=None)
    def test_symmetric_without_self_loops_at_all_times(self, m, seed, failures):
        dynamic = _dynamic(m, seed, failures)
        for t in _probe_times(dynamic):
            adjacency = dynamic.adjacency_at(t)
            assert np.array_equal(adjacency, adjacency.T)
            assert not np.any(np.diag(adjacency))

    @given(m=workers, seed=seeds, failures=failure_counts)
    @settings(max_examples=30, deadline=None)
    def test_connected_in_every_segment_when_promised(self, m, seed, failures):
        dynamic = _dynamic(m, seed, failures)
        assert dynamic.schedule.require_connected
        for t in _probe_times(dynamic):
            assert dynamic.topology_at(t).is_connected()

    @given(m=workers, seed=seeds, failures=failure_counts)
    @settings(max_examples=30, deadline=None)
    def test_live_edges_subset_of_base(self, m, seed, failures):
        dynamic = _dynamic(m, seed, failures)
        for t in _probe_times(dynamic):
            live = dynamic.adjacency_at(t)
            assert not np.any(live & ~dynamic.adjacency), (
                "live edge set leaked outside the base graph"
            )

    @given(m=workers, seed=seeds, failures=failure_counts)
    @settings(max_examples=30, deadline=None)
    def test_pure_function_of_time_any_query_order(self, m, seed, failures):
        """Forward, reversed, and interleaved scans agree; a fresh instance
        from the same inputs replays the identical history (no hidden RNG)."""
        dynamic = _dynamic(m, seed, failures)
        times = _probe_times(dynamic)
        forward = [dynamic.adjacency_at(t).copy() for t in times]
        for t in reversed(times):  # perturb internal state, if any
            dynamic.topology_at(t)
            dynamic.edge_signature_at(t)
        backward = [dynamic.adjacency_at(t).copy() for t in reversed(times)]
        for a, b in zip(forward, backward[::-1]):
            np.testing.assert_array_equal(a, b)
        fresh = _dynamic(m, seed, failures)
        for t in times:
            np.testing.assert_array_equal(
                dynamic.adjacency_at(t), fresh.adjacency_at(t)
            )
        assert fresh == dynamic

    @given(m=workers, seed=seeds, failures=failure_counts)
    @settings(max_examples=30, deadline=None)
    def test_queries_agree_with_each_other_and_the_schedule(
        self, m, seed, failures
    ):
        dynamic = _dynamic(m, seed, failures)
        for t in _probe_times(dynamic):
            live = dynamic.adjacency_at(t)
            segment = dynamic.topology_at(t)
            np.testing.assert_array_equal(live, segment.adjacency)
            down = dynamic.schedule.down_edges_at(t)
            for a, b in dynamic.edges():
                expected = (a, b) not in down
                assert dynamic.has_edge_at(a, b, t) == expected
                assert bool(live[a, b]) == expected
                assert dynamic.schedule.edge_active_at(b, a, t) == expected
            for worker in range(dynamic.num_workers):
                np.testing.assert_array_equal(
                    dynamic.neighbors_at(worker, t), np.flatnonzero(live[worker])
                )

    @given(m=workers, seed=seeds, failures=failure_counts)
    @settings(max_examples=30, deadline=None)
    def test_signatures_identify_edge_sets(self, m, seed, failures):
        """Equal live edge sets <-> equal signatures, across all segments."""
        dynamic = _dynamic(m, seed, failures)
        seen: dict[bytes, np.ndarray] = {}
        for t in _probe_times(dynamic):
            signature = dynamic.edge_signature_at(t)
            live = dynamic.adjacency_at(t)
            if signature in seen:
                np.testing.assert_array_equal(live, seen[signature])
            seen[signature] = live
        # The all-up segment matches the base graph's own signature.
        assert dynamic.edge_signature_at(0.0) == Topology(
            dynamic.adjacency
        ).edge_signature()

    @given(m=workers, seed=seeds, failures=failure_counts)
    @settings(max_examples=30, deadline=None)
    def test_at_most_one_edge_down_for_random_schedules(self, m, seed, failures):
        """EdgeSchedule.random spreads failures over disjoint windows."""
        dynamic = _dynamic(m, seed, failures)
        base_edges = int(np.triu(dynamic.adjacency, k=1).sum())
        for t in _probe_times(dynamic):
            live_edges = int(np.triu(dynamic.adjacency_at(t), k=1).sum())
            assert base_edges - live_edges in (0, 1)


class TestScheduleValidation:
    def test_single_and_flapping_constructors(self):
        single = EdgeSchedule.single(5, (1, 2), fail_at=3.0, repair_at=8.0)
        assert [e.kind for e in single.events] == ["fail", "repair"]
        assert not single.edge_active_at(1, 2, 5.0)
        assert single.edge_active_at(1, 2, 8.0)
        with pytest.raises(ValueError, match="after fail_at"):
            EdgeSchedule.single(5, (1, 2), fail_at=3.0, repair_at=2.0)
        flapping = EdgeSchedule.flapping(
            5, (0, 1), period_s=10.0, horizon_s=35.0
        )
        # 3 full cycles fit: down during [5,10), [15,20), [25,30).
        assert len(flapping) == 6
        assert not flapping.edge_active_at(0, 1, 6.0)
        assert flapping.edge_active_at(0, 1, 12.0)

    def test_double_fail_rejected(self):
        with pytest.raises(ValueError, match="fails twice"):
            EdgeSchedule(4, [(1.0, 0, 1, "fail"), (2.0, 0, 1, "fail")])

    def test_repair_while_up_rejected(self):
        with pytest.raises(ValueError, match="still up"):
            EdgeSchedule(4, [(1.0, 0, 1, "repair")])

    def test_time_zero_rejected(self):
        with pytest.raises(ValueError, match="time > 0"):
            EdgeSchedule(4, [(0.0, 0, 1, "fail")])

    def test_unknown_edge_rejected_by_dynamic_topology(self):
        ring = Topology.ring(5)
        schedule = EdgeSchedule(5, [(1.0, 0, 2, "fail")])  # not a ring edge
        with pytest.raises(ValueError, match="does not contain"):
            DynamicTopology(ring, schedule)

    def test_disconnecting_schedule_rejected_when_promised(self):
        ring = Topology.ring(4)
        # Two simultaneous ring-edge failures split the cycle.
        schedule = EdgeSchedule(
            4, [(1.0, 0, 1, "fail"), (1.0, 2, 3, "fail")]
        )
        with pytest.raises(ValueError, match="disconnects"):
            DynamicTopology(ring, schedule)
        relaxed = EdgeSchedule(
            4, [(1.0, 0, 1, "fail"), (1.0, 2, 3, "fail")],
            require_connected=False,
        )
        dynamic = DynamicTopology(ring, relaxed)
        assert not dynamic.topology_at(1.0).is_connected()

    def test_random_on_a_tree_rejected(self):
        with pytest.raises(ValueError, match="bridge"):
            EdgeSchedule.random(Topology.star(5), horizon_s=100.0, num_failures=1)

    def test_downtime_must_fit_window(self):
        with pytest.raises(ValueError, match="does not fit"):
            EdgeSchedule.random(
                Topology.ring(5), horizon_s=20.0, num_failures=2, downtime_s=15.0
            )

    def test_static_topology_answers_time_queries_trivially(self):
        ring = Topology.ring(5)
        assert not ring.is_dynamic
        assert ring.flip_times() == ()
        assert ring.topology_at(123.0) is ring
        np.testing.assert_array_equal(ring.adjacency_at(7.0), ring.adjacency)
        assert ring.edge_signature_at(0.0) == ring.edge_signature_at(1e9)
