"""Property-based tests (hypothesis) for core invariants.

These cover the load-bearing mathematical properties:

- Theorem 3's structural claims (Y_P doubly stochastic, symmetric,
  non-negative, lambda_2 < 1) for *arbitrary* feasible policies, not just
  the ones Algorithm 3 happens to output;
- LP feasibility: every solution of Eq. (14) satisfies Eq. (10)-(13);
- partitioners: exact cover / label exclusion for random datasets;
- EMA: output stays within observed bounds;
- event engine: execution order is sorted by time regardless of insertion.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mixing import (
    expected_mixing_matrix,
    is_doubly_stochastic,
    second_largest_eigenvalue,
)
from repro.core.policy import solve_policy_lp, t_interval
from repro.datasets.partition import partition_drop_labels, partition_uniform
from repro.datasets.synthetic import make_classification
from repro.graph import Topology
from repro.ml.metrics import ExponentialMovingAverage
from repro.simulation.engine import Simulator

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

workers = st.integers(min_value=3, max_value=7)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def random_times(num_workers: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    times = np.exp(rng.uniform(np.log(0.05), np.log(5.0), (num_workers, num_workers)))
    times = (times + times.T) / 2
    np.fill_diagonal(times, 0.01)
    return times


# ---------------------------------------------------------------------------
# Mixing-matrix properties (Theorem 3 structure)
# ---------------------------------------------------------------------------


class TestMixingProperties:
    @given(m=workers, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_feasible_lp_policy_yields_doubly_stochastic_mixing(self, m, seed):
        topology = Topology.fully_connected(m)
        indicator = topology.indicator()
        times = random_times(m, seed)
        alpha = 0.1
        # Choose rho safely inside the feasible band for this graph.
        rho = 1.0 / (4.0 * alpha * (m - 1))
        lower, upper = t_interval(times, indicator, alpha, rho)
        if lower > upper:
            return  # infeasible rho for this draw; nothing to check
        policy = solve_policy_lp(times, indicator, alpha, rho, (lower + upper) / 2)
        if policy is None:
            return
        mixing = expected_mixing_matrix(policy, indicator, alpha, rho)
        assert np.allclose(mixing, mixing.T, atol=1e-9)
        assert is_doubly_stochastic(mixing, atol=1e-6)
        assert np.all(mixing >= -1e-9)
        lambda2 = second_largest_eigenvalue(mixing)
        assert lambda2 < 1.0 - 1e-9

    @given(m=workers, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_lp_solution_satisfies_constraints(self, m, seed):
        topology = Topology.fully_connected(m)
        indicator = topology.indicator()
        times = random_times(m, seed)
        alpha = 0.1
        rho = 1.0 / (4.0 * alpha * (m - 1))
        lower, upper = t_interval(times, indicator, alpha, rho)
        if lower > upper:
            return
        t_bar = lower + 0.37 * (upper - lower)
        policy = solve_policy_lp(times, indicator, alpha, rho, t_bar)
        if policy is None:
            return
        # Eq. 13 / Eq. 11 / Eq. 10 in turn.
        assert np.allclose(policy.sum(axis=1), 1.0, atol=1e-8)
        off = indicator > 0
        assert np.all(policy[off] >= 2 * alpha * rho - 1e-9)
        mean_times = np.sum(times * policy * indicator, axis=1)
        assert np.allclose(mean_times, m * t_bar, rtol=1e-5)


# ---------------------------------------------------------------------------
# Partitioner properties
# ---------------------------------------------------------------------------


class TestPartitionProperties:
    @given(
        n=st.integers(min_value=20, max_value=200),
        m=st.integers(min_value=1, max_value=10),
        seed=seeds,
    )
    @settings(max_examples=40, deadline=None)
    def test_uniform_partition_exact_cover(self, n, m, seed):
        rng = np.random.default_rng(seed)
        dataset = make_classification(n, 3, 4, rng)
        if n < m:
            return
        shards = partition_uniform(dataset, m, rng)
        assert sum(len(s) for s in shards) == n
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    @given(
        seed=seeds,
        lost=st.lists(
            st.sets(st.integers(min_value=0, max_value=9), min_size=1, max_size=5),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_drop_labels_never_leaks_lost_label(self, seed, lost):
        rng = np.random.default_rng(seed)
        dataset = make_classification(300, 3, 10, rng)
        shards = partition_drop_labels(dataset, [tuple(s) for s in lost])
        for shard, lost_set in zip(shards, lost):
            assert not np.isin(shard.labels, sorted(lost_set)).any()


# ---------------------------------------------------------------------------
# EMA properties
# ---------------------------------------------------------------------------


class TestEMAProperties:
    @given(
        beta=st.floats(min_value=0.0, max_value=0.99),
        values=st.lists(
            st.floats(min_value=0.001, max_value=1e6, allow_nan=False), min_size=1, max_size=50
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_ema_bounded_by_observations(self, beta, values):
        ema = ExponentialMovingAverage(beta=beta)
        for value in values:
            ema.update(value)
        assert min(values) - 1e-9 <= ema.value <= max(values) + 1e-9

    @given(beta=st.floats(min_value=0.0, max_value=0.99), value=st.floats(0.1, 100))
    @settings(max_examples=30, deadline=None)
    def test_constant_stream_is_fixed_point(self, beta, value):
        ema = ExponentialMovingAverage(beta=beta)
        for _ in range(10):
            ema.update(value)
        assert ema.value == pytest.approx(value)


# ---------------------------------------------------------------------------
# Event-engine properties
# ---------------------------------------------------------------------------


class TestEngineProperties:
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_events_execute_in_sorted_time_order(self, delays):
        sim = Simulator()
        executed = []
        for delay in delays:
            sim.schedule_at(delay, lambda d=delay: executed.append(d))
        sim.run(until_time=1e7)
        assert executed == sorted(executed)
        assert len(executed) == len(delays)

    @given(
        delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30),
        cutoff=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_until_time_is_respected(self, delays, cutoff):
        sim = Simulator()
        executed = []
        for delay in delays:
            sim.schedule_at(delay, lambda d=delay: executed.append(d))
        sim.run(until_time=cutoff)
        assert all(d <= cutoff for d in executed)
        assert len(executed) == sum(1 for d in delays if d <= cutoff)
