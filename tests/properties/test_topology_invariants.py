"""Property suite (hypothesis) run against EVERY Topology constructor.

The trainers, the policy LP, and the scenario registry all assume four
things about a communication graph, none of which the type system states:

1. **Symmetry** -- ``d_im = d_mi`` (Section II-A: undirected graphs).
2. **No self-loops** -- ``d_ii = 0``.
3. **Connectivity where promised** -- every generator except ``from_edges``
   guarantees a connected graph (Assumption 1), including
   ``random_connected`` at ``edge_probability=0`` and ``small_world`` at
   any rewire probability.
4. **Seed-determinism** -- the randomized generators are pure functions of
   their RNG stream: the same seed always yields the identical graph (the
   sweep engine's cached == fresh guarantee rests on this).

The suite is registered per *constructor*; a completeness test fails if
someone adds a Topology classmethod (or a ``make_topology`` kind) without
wiring it in here -- mirroring ``tests/network/test_link_invariants.py``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.topology import (
    TOPOLOGY_KINDS,
    Topology,
    make_topology,
    validate_topology_request,
)

workers = st.integers(min_value=4, max_value=12)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def _composite_workers(m: int) -> int:
    """Map an arbitrary draw onto a torus-factorable worker count."""
    rows = 2 + m % 3
    cols = 2 + (m // 3) % 3
    return rows * cols


def _random_edge_graph(m: int, seed: int, p: float) -> Topology:
    """from_edges over a random spanning path plus extra random edges."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(m)
    edges = list(zip(order[:-1].tolist(), order[1:].tolist()))
    for a in range(m):
        for b in range(a + 1, m):
            if rng.random() < p:
                edges.append((a, b))
    return Topology.from_edges(m, edges)


# constructor name -> (m, seed, p) -> Topology. Every public classmethod of
# Topology must appear here (see test_every_constructor_covered).
CONSTRUCTOR_BUILDERS = {
    "fully_connected": lambda m, seed, p: Topology.fully_connected(m),
    "ring": lambda m, seed, p: Topology.ring(m),
    "star": lambda m, seed, p: Topology.star(m, center=seed % m),
    "torus": lambda m, seed, p: Topology.torus(_composite_workers(m)),
    "hypercube": lambda m, seed, p: Topology.hypercube(2 ** (2 + m % 3)),
    "expander": lambda m, seed, p: Topology.expander(
        m, np.random.default_rng(seed), num_cycles=1 + seed % 3
    ),
    "random_connected": lambda m, seed, p: Topology.random_connected(
        m, p, np.random.default_rng(seed)
    ),
    "small_world": lambda m, seed, p: Topology.small_world(
        m, p, np.random.default_rng(seed)
    ),
    "from_edges": lambda m, seed, p: _random_edge_graph(m, seed, p),
}

# from_edges builds whatever it is given; everything else promises
# Assumption 1 (our from_edges *builder* happens to include a spanning
# path, but the constructor itself makes no such promise).
CONNECTIVITY_PROMISED = sorted(set(CONSTRUCTOR_BUILDERS) - {"from_edges"})


def test_every_constructor_covered():
    """Adding a Topology constructor without invariant coverage fails here."""
    classmethods = {
        name for name, member in vars(Topology).items()
        if isinstance(member, classmethod) and not name.startswith("_")
    }
    missing = classmethods - set(CONSTRUCTOR_BUILDERS)
    assert not missing, (
        f"Topology constructors without a property-suite builder: "
        f"{sorted(missing)} -- add them to CONSTRUCTOR_BUILDERS"
    )


def test_every_topology_kind_covered():
    """Every registry kind must build through make_topology (and a new kind
    added to TOPOLOGY_KINDS without a factory branch fails here)."""
    for kind in TOPOLOGY_KINDS:
        topology = make_topology(kind, 8, edge_probability=0.3, seed=1)
        assert topology.num_workers == 8
        assert topology.is_connected()


class TestConstructorInvariants:
    @pytest.mark.parametrize("name", sorted(CONSTRUCTOR_BUILDERS))
    @given(m=workers, seed=seeds, p=probabilities)
    @settings(max_examples=25, deadline=None)
    def test_symmetric_without_self_loops(self, name, m, seed, p):
        topology = CONSTRUCTOR_BUILDERS[name](m, seed, p)
        adjacency = topology.adjacency
        assert np.array_equal(adjacency, adjacency.T), f"{name} asymmetric"
        assert not np.any(np.diag(adjacency)), f"{name} has self-loops"
        assert not adjacency.flags.writeable  # accessor hands out a frozen view

    @pytest.mark.parametrize("name", CONNECTIVITY_PROMISED)
    @given(m=workers, seed=seeds, p=probabilities)
    @settings(max_examples=25, deadline=None)
    def test_connected_where_promised(self, name, m, seed, p):
        topology = CONSTRUCTOR_BUILDERS[name](m, seed, p)
        assert topology.is_connected(), f"{name} produced a disconnected graph"
        topology.require_connected()  # must not raise

    @pytest.mark.parametrize("name", sorted(CONSTRUCTOR_BUILDERS))
    @given(m=workers, seed=seeds, p=probabilities)
    @settings(max_examples=25, deadline=None)
    def test_neighbors_agree_with_adjacency(self, name, m, seed, p):
        topology = CONSTRUCTOR_BUILDERS[name](m, seed, p)
        for worker in range(topology.num_workers):
            np.testing.assert_array_equal(
                topology.neighbors(worker),
                np.flatnonzero(topology.adjacency[worker]),
            )
            assert topology.degree(worker) == len(topology.neighbors(worker))


class TestSeedDeterminism:
    @given(m=workers, seed=seeds, p=probabilities)
    @settings(max_examples=40, deadline=None)
    def test_random_connected_is_a_pure_function_of_its_stream(self, m, seed, p):
        a = Topology.random_connected(m, p, np.random.default_rng(seed))
        b = Topology.random_connected(m, p, np.random.default_rng(seed))
        assert a == b

    @given(m=workers, seed=seeds, p=probabilities)
    @settings(max_examples=40, deadline=None)
    def test_small_world_is_a_pure_function_of_its_stream(self, m, seed, p):
        a = Topology.small_world(m, p, np.random.default_rng(seed))
        b = Topology.small_world(m, p, np.random.default_rng(seed))
        assert a == b

    @given(m=workers, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_expander_is_a_pure_function_of_its_stream(self, m, seed):
        a = Topology.expander(m, np.random.default_rng(seed))
        b = Topology.expander(m, np.random.default_rng(seed))
        assert a == b

    @given(seed=seeds, p=probabilities)
    @settings(max_examples=40, deadline=None)
    def test_make_topology_deterministic_per_seed(self, seed, p):
        for kind in ("random", "small-world", "expander"):
            a = make_topology(kind, 8, edge_probability=p, seed=seed)
            b = make_topology(kind, 8, edge_probability=p, seed=seed)
            assert a == b

    @given(m=workers, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_zero_probability_random_graph_is_a_line(self, m, seed):
        """The Hamiltonian-path connectivity patch alone: exactly m-1 edges."""
        topology = Topology.random_connected(m, 0.0, np.random.default_rng(seed))
        assert len(topology.edges()) == m - 1
        assert topology.is_connected()


class TestRequestValidation:
    @given(m=st.integers(min_value=2, max_value=40), p=probabilities)
    @settings(max_examples=60, deadline=None)
    def test_validate_agrees_with_build(self, m, p):
        """validate_topology_request passes iff make_topology succeeds."""
        for kind in TOPOLOGY_KINDS:
            try:
                validate_topology_request(kind, m, p)
                buildable = True
            except ValueError:
                buildable = False
            if buildable:
                topology = make_topology(kind, m, edge_probability=p, seed=0)
                assert topology.num_workers == m
            else:
                with pytest.raises(ValueError):
                    make_topology(kind, m, edge_probability=p, seed=0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown topology kind"):
            validate_topology_request("mesh", 8, 0.5)

    def test_torus_rejects_primes(self):
        for m in (5, 7, 11, 13):
            with pytest.raises(ValueError, match="torus"):
                validate_topology_request("torus", m, 0.5)
