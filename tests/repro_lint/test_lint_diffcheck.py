"""RPL031 (CACHE_VERSION policy), driven through the pure core so no git
repository is needed: changed-path list + sweeps.py diff text -> findings.
"""

from repro_lint.config import CACHE_VERSION_FILE
from repro_lint.diffcheck import check_cache_version

BUMP_DIFF = (
    "--- a/src/repro/experiments/sweeps.py\n"
    "+++ b/src/repro/experiments/sweeps.py\n"
    "-CACHE_VERSION = 4\n"
    "+CACHE_VERSION = 5\n"
)


def test_numerics_change_without_bump_is_flagged():
    findings = check_cache_version(
        ["src/repro/algorithms/netmax.py", "README.md"], ""
    )
    assert len(findings) == 1
    finding = findings[0]
    assert finding.code == "RPL031"
    assert finding.path == CACHE_VERSION_FILE
    assert "netmax.py" in finding.message
    assert "CACHE_VERSION" in finding.message


def test_numerics_change_with_bump_is_clean():
    assert check_cache_version(
        ["src/repro/algorithms/netmax.py"], BUMP_DIFF
    ) == []


def test_non_numerics_change_needs_no_bump():
    assert check_cache_version(
        ["README.md", "tools/repro_lint/core.py", "tests/test_cli.py",
         "src/repro/experiments/executors.py"], ""
    ) == []


def test_scenarios_module_counts_as_numerics_bearing():
    findings = check_cache_version(
        ["src/repro/experiments/scenarios.py"], ""
    )
    assert [f.code for f in findings] == ["RPL031"]


def test_message_truncates_long_path_lists():
    changed = [f"src/repro/core/mod{i}.py" for i in range(8)]
    findings = check_cache_version(changed, "")
    assert "..." in findings[0].message
