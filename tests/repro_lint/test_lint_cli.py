"""CLI behavior: exit codes, JSON payload schema, and the two meta-runs
that anchor CI -- ``python -m repro_lint src/`` must exit 0 on the real
tree, and the deliberately-violating fixture tree must exit 1.
"""

import json
import os
import subprocess
import sys

from repro_lint import __version__
from repro_lint.__main__ import findings_payload, main
from repro_lint.core import lint_paths

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
TOOLS = os.path.join(REPO_ROOT, "tools")


def run_cli(*argv, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = TOOLS
    return subprocess.run(
        [sys.executable, "-m", "repro_lint", *argv],
        cwd=cwd, env=env, capture_output=True, text=True,
    )


class TestExitCodes:
    def test_source_tree_is_clean(self):
        """The acceptance criterion: zero unwaived findings on src/."""
        proc = run_cli("src/")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout

    def test_violating_tree_fails(self):
        """The fixture tree is the deliberately-introduced violation: were
        CI's gate broken, this run coming back 0 would catch it."""
        proc = run_cli(os.path.relpath(FIXTURES, REPO_ROOT))
        assert proc.returncode == 1
        for code in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL010",
                     "RPL020", "RPL030", "RPL040"):
            assert code in proc.stdout, f"{code} missing from CLI output"

    def test_no_arguments_is_a_usage_error(self):
        assert main([]) == 2

    def test_missing_path_is_a_usage_error(self):
        assert main(["no/such/dir"]) == 2

    def test_unknown_select_code_is_a_usage_error(self):
        assert main(["--select", "RPL777", "src"]) == 2

    def test_list_rules_prints_the_catalog(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPL000", "RPL001", "RPL009", "RPL010", "RPL020",
                     "RPL030", "RPL031", "RPL040"):
            assert code in out


class TestSelect:
    def test_select_restricts_to_the_given_rules(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nimport time\nnow = time.time()\n")
        quiet = lint_paths([str(bad)], select=["RPL001"])
        assert sorted(f.code for f in quiet) == ["RPL001"]


class TestJsonPayload:
    def test_schema(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import random  # repro-lint: allow[RPL001] -- fixture\n"
            "import time\n"
            "now = time.time()\n"
        )
        out = tmp_path / "findings.json"
        code = main([str(bad), "--json", str(out), "--quiet"])
        assert code == 1  # the RPL020 finding is unwaived
        payload = json.loads(out.read_text())
        assert payload["tool"] == "repro-lint"
        assert payload["version"] == __version__
        assert payload["summary"] == {"findings": 1, "waived": 1, "files": 1}
        by_code = {f["code"]: f for f in payload["findings"]}
        assert set(by_code) == {"RPL001", "RPL020"}
        waived = by_code["RPL001"]
        assert waived["waived"] is True
        assert waived["justification"] == "fixture"
        live = by_code["RPL020"]
        assert live["waived"] is False
        assert "justification" not in live
        for entry in payload["findings"]:
            assert {"code", "rule", "path", "line", "col", "message"} <= set(entry)

    def test_clean_run_still_writes_the_artifact(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        out = tmp_path / "findings.json"
        assert main([str(good), "--json", str(out), "--quiet"]) == 0
        payload = json.loads(out.read_text())
        assert payload["summary"]["findings"] == 0
        assert payload["findings"] == []

    def test_payload_helper_counts(self):
        payload = findings_payload([], files=0)
        assert payload["summary"] == {"findings": 0, "waived": 0, "files": 0}
