"""Waiver semantics: parsing, coverage, and the two meta-findings.

Waivers are contracts: ``allow[CODE] -- why`` on (or directly above) the
flagged line. A waiver without a justification is RPL000; a waiver that
matches nothing is RPL009 -- so waivers cannot silently rot.
"""

from repro_lint.core import lint_source, parse_waivers


def _codes(findings):
    return sorted(f.code for f in findings)


class TestParsing:
    def test_same_line_waiver(self):
        waivers = parse_waivers(
            "import random  # repro-lint: allow[RPL001] -- test fixture\n"
        )
        assert len(waivers) == 1
        assert waivers[0].line == 1
        assert waivers[0].codes == ("RPL001",)
        assert waivers[0].justification == "test fixture"

    def test_multi_code_waiver(self):
        waivers = parse_waivers(
            "# repro-lint: allow[RPL001, RPL020] -- both excused\nx = 1\n"
        )
        assert waivers[0].codes == ("RPL001", "RPL020")

    def test_waiver_inside_string_literal_is_not_a_waiver(self):
        waivers = parse_waivers(
            's = "# repro-lint: allow[RPL001] -- not a comment"\n'
        )
        assert waivers == []

    def test_justification_is_optional_in_the_grammar(self):
        waivers = parse_waivers("# repro-lint: allow[RPL001]\nimport random\n")
        assert waivers[0].justification == ""


class TestCoverage:
    def test_same_line_waiver_suppresses_the_finding(self):
        findings = lint_source(
            "import random  # repro-lint: allow[RPL001] -- fixture import\n"
        )
        assert _codes(findings) == ["RPL001"]
        assert findings[0].waived
        assert findings[0].justification == "fixture import"

    def test_waiver_above_covers_the_next_code_line(self):
        findings = lint_source(
            "# repro-lint: allow[RPL001] -- fixture import\n"
            "import random\n"
        )
        assert [f.waived for f in findings] == [True]

    def test_waiver_covers_through_a_comment_run(self):
        """A multi-line justification (comment block) between the waiver
        and the flagged statement still covers it."""
        findings = lint_source(
            "# repro-lint: allow[RPL001] -- fixture import, kept because\n"
            "# this snippet exercises the legacy shuffle path and the\n"
            "# replacement lands with the next cache bump\n"
            "import random\n"
        )
        assert [f.waived for f in findings] == [True]

    def test_waiver_does_not_leak_past_the_next_code_line(self):
        findings = lint_source(
            "# repro-lint: allow[RPL001] -- only the first import\n"
            "import random\n"
            "from random import shuffle\n"
        )
        waived = [f for f in findings if f.waived]
        live = [f for f in findings if not f.waived]
        assert len(waived) == 1 and waived[0].line == 2
        assert len(live) == 1 and live[0].line == 3

    def test_waiver_only_covers_its_codes(self):
        findings = lint_source(
            "import time\n"
            "# repro-lint: allow[RPL001] -- wrong code on purpose\n"
            "now = time.time()\n"
        )
        # The RPL020 finding survives; the RPL001 waiver matched nothing.
        assert _codes(findings) == ["RPL009", "RPL020"]
        assert all(not f.waived for f in findings)


class TestMetaFindings:
    def test_justification_less_waiver_is_rpl000(self):
        findings = lint_source(
            "import random  # repro-lint: allow[RPL001]\n"
        )
        assert _codes(findings) == ["RPL000", "RPL001"]
        by_code = {f.code: f for f in findings}
        assert by_code["RPL001"].waived  # still suppressed...
        assert not by_code["RPL000"].waived  # ...but the run fails anyway

    def test_unused_waiver_is_rpl009(self):
        findings = lint_source(
            "# repro-lint: allow[RPL001] -- nothing to excuse here\n"
            "x = 1\n"
        )
        assert _codes(findings) == ["RPL009"]
        assert "matches no finding" in findings[0].message

    def test_clean_waived_module_has_no_meta_findings(self):
        findings = lint_source(
            "# repro-lint: allow[RPL001] -- fixture import\n"
            "import random\n"
        )
        assert _codes(findings) == ["RPL001"]
