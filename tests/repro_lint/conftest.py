"""Make ``tools/`` importable so the suite can import repro_lint directly.

The analyzer is deliberately not part of the ``repro`` package (it lints
that package, so it must not be linted/imported as simulation code); CI and
scripts/lint.sh run it with ``PYTHONPATH=tools``, and this conftest mirrors
that for the test process.
"""

import os
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
TOOLS = os.path.join(REPO_ROOT, "tools")
if TOOLS not in sys.path:
    sys.path.insert(0, TOOLS)


def pytest_ignore_collect(collection_path, config):
    # The fixture snippets are deliberate rule violations, not tests.
    return collection_path.name == "fixtures"
