# Deliberate RPL040 violations: broad handlers that discard the error.
def load(path):
    try:
        with open(path) as handle:
            return handle.read()
    except Exception:
        return None


def probe(fn):
    try:
        fn()
    except:  # noqa: E722
        pass


def bound_but_ignored(fn):
    try:
        fn()
    except BaseException as error:  # noqa: F841
        return "failed"
