# Clean under RPL004: named streams and SeedSequence.spawn only.
import numpy as np

_CHILD_STREAM = 0x0004


def children(seed):
    named = np.random.default_rng([seed, _CHILD_STREAM])
    root = np.random.SeedSequence(seed)
    spawned = [np.random.default_rng(child) for child in root.spawn(4)]
    direct = np.random.default_rng(np.random.SeedSequence(seed))
    return named, spawned, direct
