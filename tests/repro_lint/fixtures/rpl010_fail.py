# Deliberate RPL010 violations: an impure LinkSpeedModel query path.
import time

import numpy as np


class LinkSpeedModel:
    pass


class DriftingLinks(LinkSpeedModel):
    def __init__(self, seed):
        self.rng = np.random.default_rng([seed, 0x0010])
        self.cache = {}

    def bandwidth(self, a, b, t):
        self.cache[(a, b)] = t
        jitter = self.rng.normal()
        return time.time() + jitter


class StillDrifting(DriftingLinks):
    # Transitive subclassing must not launder the contract away.
    def latency(self, a, b, t):
        self.last_query = t
        return 0.0
