# Clean under RPL020: time means *simulated* time, identity is seed-derived.
import hashlib
import time


def stamp(sim_time, seed):
    run_id = hashlib.sha256(f"{seed}:{sim_time}".encode()).hexdigest()[:12]
    # Measuring a duration with the monotonic clock is telemetry, not a
    # simulation input, and monotonic() is not in the banned set.
    started = time.monotonic()
    return run_id, sim_time, started
