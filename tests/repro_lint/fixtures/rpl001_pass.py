# Clean under RPL001: all randomness flows through a seeded numpy Generator.
import numpy as np

_SHUFFLE_STREAM = 0x0001


def pick(items, seed):
    rng = np.random.default_rng([seed, _SHUFFLE_STREAM])
    return items[int(rng.integers(len(items)))]
