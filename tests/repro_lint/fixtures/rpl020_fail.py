# Deliberate RPL020 violations: wall-clock and OS-entropy reads.
import datetime
import os
import time
import uuid
from os import urandom


def stamp():
    now = time.time()
    today = datetime.datetime.now()
    token = os.urandom(8)
    run_id = uuid.uuid4().hex
    extra = urandom(4)
    return now, today, token, run_id, extra
