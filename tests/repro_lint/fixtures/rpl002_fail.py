# Deliberate RPL002 violations: numpy's legacy global RNG state.
import numpy as np
from numpy.random import rand


def sample(n):
    noise = np.random.randn(n)
    np.random.seed(0)
    return noise + rand(n)
