# Clean under RPL010: queries derive everything from (seed, time).
import numpy as np


class LinkSpeedModel:
    pass


class PureLinks(LinkSpeedModel):
    def __init__(self, seed):
        # __init__ is exempt: construction may set up state.
        self.seed = seed
        self.base = 1e8

    def bandwidth(self, a, b, t):
        interval = int(t) // 10
        rng = np.random.default_rng([self.seed, interval])
        return self.base * (1.0 + 0.1 * rng.standard_normal())

    def latency(self, a, b, t):
        return 0.001
