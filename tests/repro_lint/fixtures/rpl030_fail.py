# Deliberate RPL030 violations: a cell field and a nested spec field are
# missing from describe(), and CACHE_VERSION is never folded in.
import hashlib
import json
from dataclasses import dataclass

CACHE_VERSION = 1


@dataclass(frozen=True)
class RunSpec:
    max_time: float = 60.0
    eval_every: float = 5.0  # never read by describe() below


@dataclass(frozen=True)
class Cell:
    algorithm: str
    seed: int
    run: RunSpec = RunSpec()
    lr: float = 0.1  # never read by describe() below

    def describe(self):
        return {
            "algorithm": self.algorithm,
            "seed": self.seed,
            "run": {"max_time": self.run.max_time},
        }

    def cache_key(self):
        payload = json.dumps(self.describe(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()
