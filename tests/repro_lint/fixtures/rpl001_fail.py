# Deliberate RPL001 violations: stdlib random is process-global state.
import random
from random import shuffle


def pick(items):
    shuffle(items)
    return random.choice(items)
