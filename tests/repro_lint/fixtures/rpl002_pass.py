# Clean under RPL002: Generator construction is allowed, global draws are not.
import numpy as np
from numpy.random import default_rng

_NOISE_STREAM = 0x0002


def sample(n, seed):
    rng = default_rng([seed, _NOISE_STREAM])
    sequence = np.random.SeedSequence(seed)
    return rng.standard_normal(n), sequence
