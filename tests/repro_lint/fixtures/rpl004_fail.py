# Deliberate RPL004 violations: collision-prone derived seeds.
import numpy as np


def children(seed, rng):
    arithmetic = np.random.default_rng(seed + 1)
    sampled = np.random.default_rng(rng.integers(2**63))
    return arithmetic, sampled
