# Clean under RPL040: broad handlers either report or re-raise; narrow
# handlers may discard.
import logging

log = logging.getLogger(__name__)


def load(path):
    try:
        with open(path) as handle:
            return handle.read()
    except OSError:
        return None  # narrow: only the expected failure is discarded


def probe(fn):
    try:
        fn()
    except Exception as error:
        log.warning("probe failed: %s", error)
        return None


def cleanup(fn):
    try:
        fn()
    except Exception:
        release_resources()
        raise


def release_resources():
    pass
