# Clean under RPL030: every field (including nested spec fields) reaches
# describe(), and CACHE_VERSION versions the payload.
import hashlib
import json
from dataclasses import dataclass

CACHE_VERSION = 1


@dataclass(frozen=True)
class RunSpec:
    max_time: float = 60.0
    eval_every: float = 5.0


@dataclass(frozen=True)
class Cell:
    algorithm: str
    seed: int
    run: RunSpec = RunSpec()
    lr: float = 0.1

    def describe(self):
        return {
            "cache_version": CACHE_VERSION,
            "algorithm": self.algorithm,
            "seed": self.seed,
            "lr": self.lr,
            "run": {
                "max_time": self.run.max_time,
                "eval_every": self.run.eval_every,
            },
        }

    def cache_key(self):
        payload = json.dumps(self.describe(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()
