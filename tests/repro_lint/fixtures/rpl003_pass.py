# Clean under RPL003: every constructor receives explicit entropy.
import numpy as np

_DATA_STREAM = 0x0003


def fresh(seed):
    rng = np.random.default_rng([seed, _DATA_STREAM])
    sequence = np.random.SeedSequence(entropy=seed)
    return rng, sequence
