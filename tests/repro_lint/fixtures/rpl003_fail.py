# Deliberate RPL003 violations: unseeded constructors pull OS entropy.
import numpy as np


def fresh():
    rng = np.random.default_rng()
    sequence = np.random.SeedSequence()
    explicit_none = np.random.default_rng(None)
    return rng, sequence, explicit_none
