"""Fixture-driven rule tests: one pass + one fail snippet per rule.

Each ``fixtures/rplNNN_fail.py`` must trip rule RPLNNN (this is also the
"CI fails on a deliberately-introduced violation" guarantee: the CLI test
below runs the whole fixture tree and asserts exit 1); each
``fixtures/rplNNN_pass.py`` must be clean under that rule. The completeness
meta-test forces every future rule to ship with both.
"""

import os

import pytest

from repro_lint.core import RULE_REGISTRY, lint_source

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

# Meta-codes without a dedicated AST rule instance: waiver bookkeeping
# (RPL000/RPL009, exercised in test_lint_waivers.py), the diff-mode policy
# check (RPL031, exercised in test_lint_diffcheck.py), and the parse-failure
# sentinel
# (RPL999, exercised below).
CODES = sorted(RULE_REGISTRY)


def _fixture(code: str, kind: str) -> str:
    path = os.path.join(FIXTURES, f"{code.lower()}_{kind}.py")
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def test_every_rule_has_pass_and_fail_fixtures():
    for code in CODES:
        for kind in ("pass", "fail"):
            path = os.path.join(FIXTURES, f"{code.lower()}_{kind}.py")
            assert os.path.exists(path), (
                f"rule {code} has no {kind} fixture; every rule ships with "
                "a fixtures/ pair"
            )


@pytest.mark.parametrize("code", CODES)
def test_fail_fixture_trips_its_rule(code):
    findings = lint_source(_fixture(code, "fail"), select=[code])
    hits = [f for f in findings if f.code == code and not f.waived]
    assert hits, f"{code.lower()}_fail.py produced no {code} finding"
    for finding in hits:
        assert finding.line > 0 and finding.path == "<snippet>"
        assert finding.message


@pytest.mark.parametrize("code", CODES)
def test_pass_fixture_is_clean_under_its_rule(code):
    findings = lint_source(_fixture(code, "pass"), select=[code])
    assert [f for f in findings if f.code == code] == [], (
        f"{code.lower()}_pass.py should be clean under {code}, got: "
        + "; ".join(f.render() for f in findings)
    )


def test_rule_catalog_is_well_formed():
    for code, rule in RULE_REGISTRY.items():
        assert code == rule.code
        assert rule.name and rule.description


def test_unparsable_source_reports_rpl999():
    findings = lint_source("def broken(:\n")
    assert [f.code for f in findings] == ["RPL999"]


def test_select_rejects_unknown_code():
    with pytest.raises(KeyError, match="RPL777"):
        lint_source("x = 1\n", select=["RPL777"])


class TestRuleSpecifics:
    """Precision checks beyond the fixture pairs: boundaries that matter."""

    def test_rpl004_allows_bare_and_list_seeds(self):
        clean = (
            "import numpy as np\n"
            "a = np.random.default_rng(seed)\n"
            "b = np.random.default_rng([seed, 0x1234])\n"
            "c = np.random.default_rng(7)\n"
        )
        assert lint_source(clean, select=["RPL004"]) == []

    def test_rpl010_ignores_unrelated_classes(self):
        source = (
            "class Tracker:\n"
            "    def record(self, t):\n"
            "        self.last = t\n"
        )
        assert lint_source(source, select=["RPL010"]) == []

    def test_rpl010_allows_fresh_per_query_generator(self):
        source = (
            "import numpy as np\n"
            "class LinkSpeedModel: pass\n"
            "class Pure(LinkSpeedModel):\n"
            "    def bandwidth(self, t):\n"
            "        rng = np.random.default_rng([self.seed, int(t)])\n"
            "        return rng.standard_normal()\n"
        )
        assert lint_source(source, select=["RPL010"]) == []

    def test_rpl020_does_not_flag_simulated_time_attributes(self):
        source = (
            "class Sim:\n"
            "    def now(self):\n"
            "        return self.clock.time\n"
        )
        # `self.clock.time` is an attribute *read*, not a wall-clock call
        # chain rooted at the time module -- but the suffix matcher is
        # deliberately conservative and does flag `<anything>.time.time`.
        assert lint_source(source, select=["RPL020"]) == []

    def test_rpl030_flags_field_added_without_plumbing(self):
        """The acceptance-criterion scenario: grow a spec dataclass by one
        field, forget describe(), and the rule must fire on that line."""
        source = _fixture("RPL030", "pass").replace(
            "    lr: float = 0.1\n",
            "    lr: float = 0.1\n    momentum: float = 0.9\n",
        )
        findings = lint_source(source, select=["RPL030"])
        assert len(findings) == 1
        assert "momentum" in findings[0].message
        assert "stale-cache" in findings[0].message

    def test_rpl030_flags_nested_spec_field_added_without_plumbing(self):
        source = _fixture("RPL030", "pass").replace(
            "    eval_every: float = 5.0\n",
            "    eval_every: float = 5.0\n    warmup: float = 0.0\n",
        )
        findings = lint_source(source, select=["RPL030"])
        assert len(findings) == 1
        assert "warmup" in findings[0].message

    def test_rpl040_accepts_reporting_and_reraising_handlers(self):
        source = _fixture("RPL040", "pass")
        assert lint_source(source, select=["RPL040"]) == []
