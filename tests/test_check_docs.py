"""The docs gate itself: tools/check_docs.py.

Positive half: the repo's real docs/ must pass (every fenced ``repro ...``
CLI example parses, every relative cross-link resolves). Negative half:
the gate demonstrably trips on a broken page -- a doc check that cannot
fail protects nothing.
"""

import os
import sys

import pytest

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
TOOLS = os.path.join(REPO_ROOT, "tools")
if TOOLS not in sys.path:
    sys.path.insert(0, TOOLS)

import check_docs  # noqa: E402  (needs the sys.path shim above)


def run_check(docs_dir):
    return check_docs.main_check(["--docs-dir", str(docs_dir)])


def test_repo_docs_pass(capsys):
    assert run_check(os.path.join(REPO_ROOT, "docs")) == 0
    out = capsys.readouterr().out
    assert "check_docs: ok" in out
    # The pages this PR promises are actually covered.
    assert "6 doc(s)" in out or "doc(s)" in out


def test_missing_docs_dir_errors(tmp_path, capsys):
    assert run_check(tmp_path / "nowhere") == 2
    assert "no markdown files" in capsys.readouterr().err


def test_unparseable_command_fails(tmp_path, capsys):
    doc = tmp_path / "bad.md"
    doc.write_text("```sh\npython -m repro figure no-such-figure\n```\n")
    assert run_check(tmp_path) == 1
    assert "does not parse" in capsys.readouterr().err


def test_bad_dry_run_grid_fails(tmp_path, capsys):
    doc = tmp_path / "bad.md"
    doc.write_text(
        "```sh\n"
        "python -m repro sweep --algorithms adpsgd --seeds 0 --workers 4 \\\n"
        "    --scenarios heterogeneous "
        "--scenario-param compression=gzip --dry-run\n"
        "```\n"
    )
    assert run_check(tmp_path) == 1
    assert "--dry-run exited" in capsys.readouterr().err


def test_broken_link_fails(tmp_path, capsys):
    doc = tmp_path / "bad.md"
    doc.write_text("See [missing](nonexistent.md).\n")
    assert run_check(tmp_path) == 1
    assert "broken link" in capsys.readouterr().err


def test_anchor_and_absolute_links_ignored(tmp_path):
    doc = tmp_path / "ok.md"
    doc.write_text(
        "[web](https://example.com) [anchor](#section) "
        "[self](ok.md#section)\n"
    )
    assert run_check(tmp_path) == 0


@pytest.mark.parametrize("command,expected", [
    ("python -m repro sweep --dry-run", ["sweep", "--dry-run"]),
    ("repro figure compression", ["figure", "compression"]),
    ("FOO=1 python -m repro sweep --dry-run &", ["sweep", "--dry-run"]),
    ("wait", None),
    ("Q=/shared/sweep-q", None),
    ("python -m pytest -q benchmarks/bench_scalability.py", None),
])
def test_repro_argv_extraction(command, expected):
    assert check_docs.repro_argv(command) == expected


def test_continuations_joined():
    lines = ["python -m repro sweep \\", "    --algorithms adpsgd \\",
             "    --dry-run", "wait"]
    logical = check_docs.join_continuations(lines)
    assert logical[0].split() == [
        "python", "-m", "repro", "sweep", "--algorithms", "adpsgd",
        "--dry-run",
    ]
    assert logical[1] == "wait"
