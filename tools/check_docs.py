#!/usr/bin/env python
"""CI gate: every CLI example and cross-link in docs/*.md must be real.

Two checks over every markdown file in the docs directory:

1. **CLI commands parse.** Each ``python -m repro ...`` (or bare
   ``repro ...``) command inside a fenced code block is fed to the real
   ``repro.cli.build_parser()``. A renamed flag, removed subcommand, or
   stale scenario/figure name fails the build instead of rotting on the
   page. Commands that carry ``--dry-run`` are additionally *executed*
   through ``repro.cli.main`` (dry runs stop at spec validation, so this
   is cheap) and must exit 0 -- which also validates their
   ``--scenario-param`` grids at spec time.
2. **Relative links resolve.** Every ``[text](target)`` markdown link
   whose target is not an absolute URL or in-page anchor must point at an
   existing file relative to the doc (anchors stripped). Repo-root
   references like ``ROADMAP.md`` are resolved against the docs dir's
   parent as a fallback.

Shell niceties inside fenced blocks are understood: ``\\`` line
continuations, ``#`` comments, leading ``VAR=value`` environment
assignments, trailing ``&`` backgrounding, and ``$VAR`` placeholders
(treated as opaque strings). Non-repro lines (plain shell like ``wait``
or ``export``) are ignored.

Usage::

    PYTHONPATH=src python tools/check_docs.py [--docs-dir docs]

Exits non-zero listing every violation (the CI step also runs it against
a deliberately broken page to prove the gate trips).
"""

from __future__ import annotations

import argparse
import re
import shlex
import sys
from pathlib import Path

FENCE_RE = re.compile(r"^```")
LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
ENV_ASSIGN_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*=")


def extract_fenced_blocks(text: str) -> list[list[str]]:
    """Return the lines of each fenced code block, in order."""
    blocks: list[list[str]] = []
    current: list[str] | None = None
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            if current is None:
                current = []
            else:
                blocks.append(current)
                current = None
            continue
        if current is not None:
            current.append(line)
    return blocks


def join_continuations(lines: list[str]) -> list[str]:
    """Merge backslash-continued lines into single logical commands."""
    logical: list[str] = []
    buffer = ""
    for line in lines:
        stripped = line.rstrip()
        if stripped.endswith("\\"):
            buffer += stripped[:-1] + " "
            continue
        logical.append(buffer + stripped)
        buffer = ""
    if buffer.strip():
        logical.append(buffer.rstrip())
    return logical


def repro_argv(command: str) -> list[str] | None:
    """Extract the repro CLI argv from one logical shell command.

    Returns None if the command is not a repro invocation (plain shell,
    pytest calls, variable assignments, ...).
    """
    try:
        tokens = shlex.split(command, comments=True)
    except ValueError:
        return None
    while tokens and ENV_ASSIGN_RE.match(tokens[0]):
        tokens = tokens[1:]
    if tokens and tokens[-1] == "&":
        tokens = tokens[:-1]
    if tokens[:3] == ["python", "-m", "repro"]:
        return tokens[3:]
    if tokens[:1] == ["repro"]:
        return tokens[1:]
    return None


def iter_doc_commands(text: str):
    """Yield every repro CLI argv found in the fenced blocks of a doc."""
    for block in extract_fenced_blocks(text):
        for command in join_continuations(block):
            argv = repro_argv(command)
            if argv:
                yield command.strip(), argv


def check_commands(doc: Path, errors: list[str]) -> int:
    """Parse (and dry-run where marked) every CLI example in one doc."""
    from repro.cli import build_parser, main

    parser = build_parser()
    checked = 0
    for command, argv in iter_doc_commands(doc.read_text()):
        checked += 1
        try:
            parser.parse_args(argv)
        except SystemExit:
            errors.append(f"{doc}: does not parse: {command}")
            continue
        if "--dry-run" in argv:
            import contextlib
            import io

            try:
                with contextlib.redirect_stdout(io.StringIO()):
                    code = main(argv)
            except SystemExit as exc:  # argparse or CLI-level exit
                code = exc.code or 0
            if code != 0:
                errors.append(
                    f"{doc}: --dry-run exited {code}: {command}"
                )
    return checked


def check_links(doc: Path, docs_dir: Path, errors: list[str]) -> int:
    """Every relative link target must exist on disk."""
    checked = 0
    for match in LINK_RE.finditer(doc.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        checked += 1
        path = target.split("#", 1)[0]
        if not path:
            continue
        candidates = (doc.parent / path, docs_dir.parent / path)
        if not any(c.exists() for c in candidates):
            errors.append(f"{doc}: broken link: {target}")
    return checked


def main_check(argv: list[str] | None = None) -> int:
    args_parser = argparse.ArgumentParser(description=__doc__)
    args_parser.add_argument(
        "--docs-dir", default="docs",
        help="directory of markdown files to check (default: docs)",
    )
    args = args_parser.parse_args(argv)
    docs_dir = Path(args.docs_dir)
    docs = sorted(docs_dir.glob("*.md"))
    if not docs:
        print(f"check_docs: no markdown files under {docs_dir}/", file=sys.stderr)
        return 2

    errors: list[str] = []
    commands = links = 0
    for doc in docs:
        commands += check_commands(doc, errors)
        links += check_links(doc, docs_dir, errors)

    if errors:
        print("check_docs: FAILED", file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 1
    print(
        f"check_docs: ok -- {len(docs)} doc(s), {commands} CLI command(s) "
        f"parsed, {links} relative link(s) resolved"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main_check())
