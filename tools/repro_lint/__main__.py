"""CLI: ``python -m repro_lint [paths...]`` (needs ``tools/`` on PYTHONPATH).

Exit codes: 0 = no unwaived findings, 1 = findings, 2 = usage error.
``--json`` writes the machine-readable findings payload (the CI artifact);
waived findings are included there with ``waived: true`` for auditability
but never affect the exit code.
"""

from __future__ import annotations

import argparse
import json
import sys

import repro_lint
from repro_lint.core import RULE_REGISTRY, Finding, lint_paths
from repro_lint.diffcheck import run_diff_check


def findings_payload(findings: list[Finding], files: int | None = None) -> dict:
    unwaived = [f for f in findings if not f.waived]
    payload = {
        "tool": "repro-lint",
        "version": repro_lint.__version__,
        "summary": {
            "findings": len(unwaived),
            "waived": len(findings) - len(unwaived),
        },
        "findings": [f.as_json() for f in findings],
    }
    if files is not None:
        payload["summary"]["files"] = files
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro_lint",
        description="AST-based determinism & cache-contract analyzer",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument("--json", metavar="PATH",
                        help="write the JSON findings payload here")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run (default: all)")
    parser.add_argument("--diff-base", metavar="REF",
                        help="also run the CACHE_VERSION policy check against "
                             "this git ref (merge-base semantics)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-finding lines (summary only)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(RULE_REGISTRY):
            rule = RULE_REGISTRY[code]
            print(f"{code}  {rule.name}: {rule.description}")
        print("RPL000  waiver-needs-justification: a waiver must say why "
              "(`allow[CODE] -- reason`)")
        print("RPL009  unused-waiver: a waiver matching no finding must be "
              "removed")
        print("RPL031  cache-version-policy: numerics-bearing diffs must "
              "bump CACHE_VERSION (runs with --diff-base)")
        return 0

    if not args.paths and not args.diff_base:
        parser.print_usage(sys.stderr)
        print("repro_lint: error: nothing to do (give paths, --diff-base, "
              "or --list-rules)", file=sys.stderr)
        return 2

    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]

    findings: list[Finding] = []
    files = 0
    try:
        if args.paths:
            from repro_lint.core import iter_python_files
            file_list = list(iter_python_files(args.paths))
            files = len(file_list)
            findings.extend(lint_paths(file_list, select=select))
        if args.diff_base:
            findings.extend(run_diff_check(args.diff_base))
    except (FileNotFoundError, KeyError) as error:
        print(f"repro_lint: error: {error}", file=sys.stderr)
        return 2

    unwaived = [f for f in findings if not f.waived]
    if not args.quiet:
        for finding in findings:
            print(finding.render())
    waived_count = len(findings) - len(unwaived)
    print(
        f"repro-lint: {files} file(s), {len(unwaived)} finding(s), "
        f"{waived_count} waived"
    )

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(findings_payload(findings, files), handle, indent=2)
            handle.write("\n")

    return 1 if unwaived else 0


if __name__ == "__main__":
    sys.exit(main())
