"""Repo-specific knobs for the rules, in one place.

Rules stay generic (they see one module at a time); everything that encodes
*this* repository's layout or conventions -- which modules bear numerics,
which RNG methods advance state, where the cache-key payload lives -- is a
constant here, so adding a module or convention is a one-line change.
"""

# Paths (prefix match, forward slashes) whose changes can shift trainer
# numerics: a diff touching any of these must also bump CACHE_VERSION in
# src/repro/experiments/sweeps.py, or stale on-disk sweep results would
# masquerade as fresh ones. scenarios.py is on the list because scenario
# *builders* (workload/model/link construction) feed the runs directly even
# though the spec parameters are already part of the cache key.
NUMERICS_BEARING_PREFIXES = (
    "src/repro/algorithms/",
    "src/repro/core/",
    "src/repro/simulation/",
    "src/repro/network/",
    "src/repro/graph/",
    "src/repro/ml/",
    "src/repro/datasets/",
    "src/repro/experiments/scenarios.py",
)

# Where CACHE_VERSION lives (the diff check looks for +/- lines touching it).
CACHE_VERSION_FILE = "src/repro/experiments/sweeps.py"

# numpy Generator methods that advance the underlying bit stream. Calling
# one of these on a *stored* RNG inside a link-model query path makes the
# answer depend on query order -- the exact bug the purity contract bans.
RNG_ADVANCE_METHODS = frozenset({
    "integers", "random", "uniform", "normal", "standard_normal",
    "choice", "shuffle", "permutation", "permuted", "exponential",
    "poisson", "lognormal", "binomial", "geometric", "gamma", "beta",
    "bytes",
})

# np.random module-level names that are legitimate *constructors* / types
# rather than global-state conveniences.
NUMPY_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

# Dotted-suffix matches for nondeterministic wall-clock / entropy reads.
# time.perf_counter / time.monotonic are deliberately absent: measuring how
# long something took is telemetry, not simulation input.
WALLCLOCK_BANNED_SUFFIXES = (
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
)
WALLCLOCK_BANNED_PREFIXES = ("secrets.",)

# Base classes whose subclasses' query paths must be pure functions of time.
PURITY_BASE_CLASSES = frozenset({"LinkSpeedModel"})

# Query-path exemptions: construction and serialization may do what they
# like; the purity contract is about *queries*.
PURITY_EXEMPT_METHODS = frozenset({"__init__", "__post_init__", "__repr__"})
