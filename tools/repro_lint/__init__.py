"""repro-lint: AST-based determinism & cache-contract analyzer.

The reproduction's trustworthiness rests on invariants the test suite can
only probe *after the fact* (golden regressions, link-invariant suites,
bit-identity integration tests). This package enforces the same contracts
*statically*, at review time:

- RNG discipline: no stdlib ``random``, no ``np.random`` module-level
  state, no unseeded ``default_rng()``, and no collision-prone derived
  seeds -- RNG streams come from the named ``default_rng([seed, _STREAM])``
  pattern (see ``_TOPOLOGY_STREAM`` / ``_EDGE_FLIP_STREAM``).
- Link-model purity: query-path methods of ``LinkSpeedModel`` subclasses
  must stay pure functions of time (no ``self`` mutation, no stored-RNG
  advance, no wall clock).
- Wall-clock ban: ``time.time`` / ``datetime.now`` / ``os.urandom`` /
  ``uuid4`` have no place in simulation code (broker telemetry waives
  per site, with a justification).
- Cache-key completeness: every dataclass field of the sweep-spec types
  must be reachable from ``SweepCell.describe()`` -- the sha256 cache-key
  payload -- so adding a field without keying it is a lint error.
- CACHE_VERSION policy (diff mode): a diff touching numerics-bearing
  modules must also bump ``CACHE_VERSION``.
- Swallowed exceptions: no broad ``except`` that silently discards the
  error, especially in the broker's lease/retry paths.

Run ``python -m repro_lint src/`` (requires ``tools/`` on ``PYTHONPATH``).
Waive a finding with ``# repro-lint: allow[CODE] -- justification``.
"""

from repro_lint.core import (  # noqa: F401  (public API re-exports)
    Finding,
    Module,
    Rule,
    RULE_REGISTRY,
    lint_paths,
    lint_source,
    register_rule,
)

__version__ = "1.0.0"

from repro_lint import rules  # noqa: E402,F401  (rule registration side effect)
