"""CACHE_VERSION policy check (RPL031) -- the diff-mode companion rule.

Sweep results are cached on disk keyed by (CACHE_VERSION, cell spec). A
change to any numerics-bearing module can shift what a cell *computes*
without changing what it is *called* -- and then every stale cache entry
masquerades as a fresh result. Policy (see docs/determinism.md): a diff
touching a numerics-bearing module must also bump ``CACHE_VERSION`` in
``sweeps.py``.

This cannot be an AST rule over one module; it looks at a git diff. The
logic is a pure function (:func:`check_cache_version`) so the test suite
drives it without a repository; :func:`run_diff_check` is the thin git
wrapper the CLI's ``--diff-base`` flag calls.
"""

from __future__ import annotations

import re
import subprocess

from repro_lint.config import CACHE_VERSION_FILE, NUMERICS_BEARING_PREFIXES
from repro_lint.core import Finding

_CACHE_VERSION_LINE = re.compile(r"^[+-]\s*CACHE_VERSION\s*=", re.MULTILINE)


def check_cache_version(
    changed_paths: list[str], sweeps_diff_text: str
) -> list[Finding]:
    """Pure core: changed file list + the sweeps.py diff -> findings."""
    numerics = sorted(
        path for path in changed_paths
        if path.startswith(NUMERICS_BEARING_PREFIXES)
    )
    if not numerics:
        return []
    if _CACHE_VERSION_LINE.search(sweeps_diff_text):
        return []
    shown = ", ".join(numerics[:5]) + (", ..." if len(numerics) > 5 else "")
    return [Finding(
        code="RPL031", rule="cache-version-policy",
        path=CACHE_VERSION_FILE, line=1, col=0,
        message=(
            f"diff touches numerics-bearing module(s) [{shown}] without "
            "bumping CACHE_VERSION; stale sweep-cache entries could "
            "masquerade as fresh results. Bump it (and regenerate the "
            "golden-regression constants if numerics really moved), or "
            "confirm the change cannot shift any trainer's output"
        ),
    )]


def _git(repo_root: str, *args: str) -> str:
    return subprocess.run(
        ["git", "-C", repo_root, *args],
        check=True, capture_output=True, text=True,
    ).stdout


def run_diff_check(diff_base: str, repo_root: str = ".") -> list[Finding]:
    """Compare HEAD against ``diff_base`` (three-dot: merge-base semantics,
    matching what a PR diff shows)."""
    changed = _git(
        repo_root, "diff", "--name-only", f"{diff_base}...HEAD"
    ).splitlines()
    sweeps_diff = _git(
        repo_root, "diff", f"{diff_base}...HEAD", "--", CACHE_VERSION_FILE
    )
    return check_cache_version(
        [path.strip() for path in changed if path.strip()], sweeps_diff
    )
