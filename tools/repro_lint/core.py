"""Rule framework: findings, the rule registry, waivers, and the runner.

A rule sees one :class:`Module` (path + source + parsed AST) at a time and
yields :class:`Finding`s. The runner matches findings against inline
waivers (``# repro-lint: allow[CODE] -- justification``) before reporting:
a waived finding is kept in the JSON payload for auditability but does not
fail the run. A waiver with no justification, or one that matches nothing,
is itself a finding -- waivers are contracts, not mute buttons.
"""

from __future__ import annotations

import ast
import dataclasses
import os
import re
import tokenize
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source location."""

    code: str
    rule: str
    path: str
    line: int
    col: int
    message: str
    waived: bool = False
    justification: str | None = None

    def render(self) -> str:
        suffix = f"  (waived: {self.justification})" if self.waived else ""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}{suffix}"

    def as_json(self) -> dict:
        payload = dataclasses.asdict(self)
        if not self.waived:
            payload.pop("justification")
        return payload


@dataclass(frozen=True)
class Waiver:
    """One parsed ``# repro-lint: allow[...]`` comment."""

    line: int
    codes: tuple[str, ...]
    justification: str


@dataclass
class Module:
    """What a rule gets to look at: one parsed source file."""

    path: str  # normalized with forward slashes, as given on the CLI
    source: str
    tree: ast.Module
    waivers: list[Waiver] = field(default_factory=list)


class Rule:
    """Base class: subclass, set ``code``/``name``/``description``, implement
    :meth:`check`, and decorate with :func:`register_rule`."""

    code: str = ""
    name: str = ""
    description: str = ""

    def check(self, module: Module) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(
            code=self.code,
            rule=self.name,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


RULE_REGISTRY: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate + index by code (collisions are bugs)."""
    rule = cls()
    if not rule.code or not rule.name:
        raise ValueError(f"rule {cls.__name__} needs a code and a name")
    if rule.code in RULE_REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code!r}")
    RULE_REGISTRY[rule.code] = rule
    return cls


# -- waiver parsing ------------------------------------------------------------

# `# repro-lint: allow[RPL004]` or `allow[RPL004,RPL020] -- why it is fine`.
_WAIVER_RE = re.compile(
    r"#\s*repro-lint:\s*allow\[(?P<codes>[A-Z0-9,\s]+)\]"
    r"(?:\s*--\s*(?P<why>.*\S))?"
)


def parse_waivers(source: str) -> list[Waiver]:
    """Extract waiver comments via the tokenizer (never fooled by strings)."""
    waivers = []
    lines = source.splitlines(keepends=True)
    reader = iter(lines)
    try:
        for token in tokenize.generate_tokens(lambda: next(reader, "")):
            if token.type != tokenize.COMMENT:
                continue
            match = _WAIVER_RE.search(token.string)
            if match is None:
                continue
            codes = tuple(
                code.strip() for code in match.group("codes").split(",")
                if code.strip()
            )
            waivers.append(Waiver(
                line=token.start[0],
                codes=codes,
                justification=(match.group("why") or "").strip(),
            ))
    except tokenize.TokenError:
        pass  # unterminated constructs -- the ast parse already failed loudly
    return waivers


def _comment_only_line(source_lines: list[str], line: int) -> bool:
    text = source_lines[line - 1].strip() if 0 < line <= len(source_lines) else ""
    return text.startswith("#")


def apply_waivers(module: Module, findings: list[Finding]) -> list[Finding]:
    """Match findings against the module's waivers.

    A waiver covers findings of its codes on its own line; a waiver on a
    comment-only line instead covers the next non-comment line (so a flagged
    statement can carry the waiver -- and a multi-line justification --
    above it). Emits meta-findings for
    waivers with no justification (RPL000) and waivers that matched nothing
    (RPL009) -- stale waivers must not outlive the code they excused.
    """
    source_lines = module.source.splitlines()
    used: set[int] = set()
    out: list[Finding] = []
    for finding in findings:
        waived = None
        for index, waiver in enumerate(module.waivers):
            if finding.code not in waiver.codes:
                continue
            covered = {waiver.line}
            cursor = waiver.line
            while _comment_only_line(source_lines, cursor):
                cursor += 1
                covered.add(cursor)
            if finding.line in covered:
                waived = (index, waiver)
                break
        if waived is None:
            out.append(finding)
        else:
            index, waiver = waived
            used.add(index)
            out.append(dataclasses.replace(
                finding, waived=True,
                justification=waiver.justification or None,
            ))
    for index, waiver in enumerate(module.waivers):
        if not waiver.justification:
            out.append(Finding(
                code="RPL000", rule="waiver-needs-justification",
                path=module.path, line=waiver.line, col=0,
                message=(
                    "waiver has no justification; write "
                    "`# repro-lint: allow[CODE] -- <why this is safe>`"
                ),
            ))
        if index not in used and waiver.justification:
            out.append(Finding(
                code="RPL009", rule="unused-waiver",
                path=module.path, line=waiver.line, col=0,
                message=(
                    f"waiver for {', '.join(waiver.codes)} matches no finding; "
                    "remove it"
                ),
            ))
    return out


# -- running -------------------------------------------------------------------


def _selected_rules(select: Iterable[str] | None) -> list[Rule]:
    if select is None:
        return [RULE_REGISTRY[code] for code in sorted(RULE_REGISTRY)]
    rules = []
    for code in select:
        if code not in RULE_REGISTRY:
            raise KeyError(
                f"unknown rule code {code!r}; known: {sorted(RULE_REGISTRY)}"
            )
        rules.append(RULE_REGISTRY[code])
    return rules


def lint_source(
    source: str, path: str = "<snippet>", select: Iterable[str] | None = None
) -> list[Finding]:
    """Lint one in-memory module; the unit-test entry point."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [Finding(
            code="RPL999", rule="syntax-error", path=path,
            line=error.lineno or 1, col=error.offset or 0,
            message=f"cannot parse: {error.msg}",
        )]
    module = Module(
        path=path, source=source, tree=tree, waivers=parse_waivers(source)
    )
    findings: list[Finding] = []
    for rule in _selected_rules(select):
        findings.extend(rule.check(module))
    findings = apply_waivers(module, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        if not os.path.isdir(path):
            raise FileNotFoundError(f"no such file or directory: {path}")
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if d not in ("__pycache__", ".git")
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def lint_paths(
    paths: Iterable[str], select: Iterable[str] | None = None
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` (the CLI entry point)."""
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        with open(file_path, encoding="utf-8") as handle:
            source = handle.read()
        findings.extend(
            lint_source(source, path=file_path.replace(os.sep, "/"), select=select)
        )
    return findings
