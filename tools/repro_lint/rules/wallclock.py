"""Wall-clock / entropy ban (RPL020).

Simulation results must be pure functions of (spec, seed). Reading the wall
clock or OS entropy anywhere in the simulation path silently breaks
``parallel == inline`` bit-identity and poisons the sha256 result cache.
Broker/executor telemetry legitimately needs some of these (lease ages,
run ids); those sites carry explicit waivers with justifications rather
than a blanket path exemption, so every use is auditable in place.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro_lint.config import (
    WALLCLOCK_BANNED_PREFIXES,
    WALLCLOCK_BANNED_SUFFIXES,
)
from repro_lint.core import Finding, Module, Rule, register_rule
from repro_lint.rules import dotted_name


def banned_clock_name(name: str | None) -> bool:
    if name is None:
        return False
    if name.startswith(WALLCLOCK_BANNED_PREFIXES):
        return True
    return any(
        name == suffix or name.endswith("." + suffix)
        for suffix in WALLCLOCK_BANNED_SUFFIXES
    )


@register_rule
class NoWallClock(Rule):
    code = "RPL020"
    name = "no-wall-clock"
    description = (
        "wall-clock / OS-entropy reads (time.time, datetime.now, "
        "os.urandom, uuid4, secrets.*) are nondeterministic inputs"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        flagged: set[int] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            name = dotted_name(node)
            if banned_clock_name(name) and id(node.value) not in flagged:
                # One finding per outermost matching chain: mark the child
                # so `datetime.datetime.now` does not double-report.
                flagged.add(id(node))
                yield self.finding(
                    module, node,
                    f"`{name}` reads nondeterministic state; simulation "
                    "inputs must be pure functions of (spec, seed)",
                )
        for node in ast.walk(module.tree):
            # `from os import urandom; urandom(8)` style: bare-name calls of
            # the banned tails, resolved through the module's imports.
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                banned_tails = {
                    suffix.split(".")[-1] for suffix in WALLCLOCK_BANNED_SUFFIXES
                    if suffix.startswith((node.module or "") + ".")
                }
                for alias in node.names:
                    if alias.name in banned_tails:
                        yield self.finding(
                            module, node,
                            f"`from {node.module} import {alias.name}` pulls "
                            "a nondeterministic reader into scope",
                        )
