"""Cache-key completeness (RPL030).

The sweep result cache is keyed by sha256 over ``SweepCell.describe()``.
The classic stale-cache bug: a dataclass field is added to one of the spec
types (``ScenarioSpec`` / ``WorkloadSpec`` / ``RunSpec`` / the cell itself)
but never plumbed into ``describe()``, so two cells differing only in that
field share a cache key and one silently serves the other's result.

This rule makes that a lint error. It activates on any module defining a
class with both ``describe`` and ``cache_key`` methods (the cell class),
reads the cell's dataclass fields and their annotations, and checks that

- every cell field is read as ``self.<field>`` inside ``describe``, and
- for each cell field annotated with a dataclass defined in the same
  module, every field of *that* dataclass is read as
  ``self.<field>.<subfield>``, and
- ``describe`` folds ``CACHE_VERSION`` into the payload.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro_lint.core import Finding, Module, Rule, register_rule
from repro_lint.rules import dotted_name, self_attribute_chain


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name and name.split(".")[-1] == "dataclass":
            return True
    return False


def _annotation_name(annotation: ast.AST | None) -> str | None:
    """The bare class a field annotation names, if any (unwraps Optional-ish
    subscripts conservatively: only plain names count)."""
    if annotation is None:
        return None
    name = dotted_name(annotation)
    if name is not None:
        return name.split(".")[-1]
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.split(".")[-1].split("[")[0]
    return None


def _dataclass_fields(cls: ast.ClassDef) -> list[tuple[str, str | None, int]]:
    """``(field_name, annotation_class_or_None, lineno)`` per declared field."""
    fields = []
    for item in cls.body:
        if not isinstance(item, ast.AnnAssign) or not isinstance(item.target, ast.Name):
            continue
        annotation = item.annotation
        if _annotation_name(annotation) == "ClassVar":
            continue
        fields.append((item.target.id, _annotation_name(annotation), item.lineno))
    return fields


def _method(cls: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for item in cls.body:
        if isinstance(item, ast.FunctionDef) and item.name == name:
            return item
    return None


@register_rule
class CacheKeyCompleteness(Rule):
    code = "RPL030"
    name = "cache-key-completeness"
    description = (
        "every spec dataclass field must be reachable from the cell's "
        "describe() -- an unkeyed field is a stale-cache hazard"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        classes = {
            node.name: node for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        }
        for cls in classes.values():
            describe = _method(cls, "describe")
            if describe is None or _method(cls, "cache_key") is None:
                continue
            if not _is_dataclass(cls):
                continue
            yield from self._check_cell(module, cls, describe, classes)

    def _check_cell(
        self,
        module: Module,
        cell: ast.ClassDef,
        describe: ast.FunctionDef,
        classes: dict[str, ast.ClassDef],
    ) -> Iterator[Finding]:
        chains: set[tuple[str, ...]] = set()
        mentions_cache_version = False
        for node in ast.walk(describe):
            chain = self_attribute_chain(node)
            if chain is not None:
                chains.add(chain)
            if isinstance(node, ast.Name) and node.id == "CACHE_VERSION":
                mentions_cache_version = True

        def reachable(prefix: tuple[str, ...]) -> bool:
            return any(chain[: len(prefix)] == prefix for chain in chains)

        for field_name, annotation, lineno in _dataclass_fields(cell):
            if not reachable((field_name,)):
                yield Finding(
                    code=self.code, rule=self.name, path=module.path,
                    line=lineno, col=0,
                    message=(
                        f"{cell.name}.{field_name} never appears in "
                        f"{cell.name}.describe(): the cache key cannot see "
                        "it (stale-cache hazard); plumb it into describe()"
                    ),
                )
                continue
            nested = classes.get(annotation) if annotation else None
            if nested is None or not _is_dataclass(nested):
                continue
            for sub_name, _sub_annotation, sub_lineno in _dataclass_fields(nested):
                if not reachable((field_name, sub_name)):
                    yield Finding(
                        code=self.code, rule=self.name, path=module.path,
                        line=sub_lineno, col=0,
                        message=(
                            f"{nested.name}.{sub_name} never appears in "
                            f"{cell.name}.describe() (via self.{field_name}): "
                            "the cache key cannot see it (stale-cache "
                            "hazard); plumb it into describe()"
                        ),
                    )
        if not mentions_cache_version:
            yield Finding(
                code=self.code, rule=self.name, path=module.path,
                line=describe.lineno, col=describe.col_offset,
                message=(
                    f"{cell.name}.describe() does not fold CACHE_VERSION "
                    "into the payload; stale results from older numerics "
                    "could masquerade as fresh ones"
                ),
            )
