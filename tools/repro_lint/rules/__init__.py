"""Rule modules; importing this package registers every rule.

Shared AST helpers live here so individual rules stay small.
"""

from __future__ import annotations

import ast


def dotted_name(node: ast.AST) -> str | None:
    """``np.random.default_rng`` -> that string; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    return dotted_name(node.func)


def self_attribute_chain(node: ast.AST) -> tuple[str, ...] | None:
    """``self.workload.model`` -> ``("workload", "model")``; None otherwise."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and parts:
        return tuple(reversed(parts))
    return None


from repro_lint.rules import (  # noqa: E402,F401  (import-for-registration)
    cachekey,
    exceptions,
    purity,
    rng,
    wallclock,
)
