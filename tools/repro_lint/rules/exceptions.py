"""Swallowed-exception detection (RPL040).

The broker's lease/retry paths (``executors.py``) turn worker crashes into
recorded, retryable failures; a broad ``except`` that silently discards the
error would instead turn them into hung sweeps and missing cells. A broad
handler is fine when it *re-raises* or *reports* (binds the exception and
actually uses it); it is a finding when the error evaporates.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro_lint.core import Finding, Module, Rule, register_rule
from repro_lint.rules import dotted_name

_BROAD = ("Exception", "BaseException")


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        name = dotted_name(node)
        if name is not None and name.split(".")[-1] in _BROAD:
            return True
    return False


def _uses_name(body: list[ast.stmt], name: str) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and node.id == name:
                return True
    return False


def _reraises(body: list[ast.stmt]) -> bool:
    return any(isinstance(n, ast.Raise) for stmt in body for n in ast.walk(stmt))


@register_rule
class NoSwallowedExceptions(Rule):
    code = "RPL040"
    name = "no-swallowed-exception"
    description = (
        "a broad `except` must re-raise or report the error, never "
        "silently discard it"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if _reraises(node.body):
                continue
            if node.name is not None and _uses_name(node.body, node.name):
                continue
            what = "bare except" if node.type is None else \
                "broad except (Exception/BaseException)"
            yield self.finding(
                module, node,
                f"{what} silently swallows the error; narrow the exception "
                "types, re-raise, or record the error (`as e` + report)",
            )
