"""RNG discipline rules (RPL001-RPL004).

The whole reproduction rests on one convention: every random draw comes
from a ``numpy`` Generator constructed as ``default_rng([seed, _STREAM])``
-- a SeedSequence-derived *named stream* (see ``_TOPOLOGY_STREAM``,
``_EDGE_FLIP_STREAM``) -- or from a Generator explicitly threaded in by the
caller. Anything else either draws from process-global state (stdlib
``random``, ``np.random.<fn>``), from OS entropy (unseeded constructors),
or from collision-prone derived seeds (``seed + 1``, ``rng.integers(...)``)
that can silently alias another stream.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro_lint.config import NUMPY_RANDOM_ALLOWED
from repro_lint.core import Finding, Module, Rule, register_rule
from repro_lint.rules import call_name


@register_rule
class NoStdlibRandom(Rule):
    code = "RPL001"
    name = "no-stdlib-random"
    description = (
        "the stdlib `random` module is process-global state; use a "
        "numpy Generator from a named `default_rng([seed, _STREAM])` stream"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            module, node,
                            "stdlib `random` imported; all randomness must "
                            "flow through seeded numpy Generators",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self.finding(
                        module, node,
                        "stdlib `random` imported; all randomness must "
                        "flow through seeded numpy Generators",
                    )


@register_rule
class NoNumpyGlobalRNG(Rule):
    code = "RPL002"
    name = "no-numpy-global-rng"
    description = (
        "np.random.<fn>() draws from numpy's process-global legacy state; "
        "construct a Generator instead"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name is None:
                    continue
                parts = name.split(".")
                if len(parts) >= 2 and parts[-2] == "random" \
                        and parts[0] in ("np", "numpy") \
                        and parts[-1] not in NUMPY_RANDOM_ALLOWED:
                    yield self.finding(
                        module, node,
                        f"`{name}()` uses numpy's global RNG state; "
                        "draw from a seeded Generator",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module in ("numpy.random", "np.random"):
                    for alias in node.names:
                        if alias.name not in NUMPY_RANDOM_ALLOWED:
                            yield self.finding(
                                module, node,
                                f"`from numpy.random import {alias.name}` "
                                "pulls a global-state convenience function",
                            )


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


@register_rule
class NoUnseededRNG(Rule):
    code = "RPL003"
    name = "no-unseeded-rng"
    description = (
        "default_rng() / SeedSequence() with no seed pulls OS entropy: "
        "every run differs"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            tail = name.split(".")[-1]
            if tail not in ("default_rng", "SeedSequence"):
                continue
            if not node.args or _is_none(node.args[0]):
                if node.keywords and tail == "SeedSequence":
                    continue  # SeedSequence(entropy=...) is seeded
                yield self.finding(
                    module, node,
                    f"`{tail}()` without a seed is nondeterministic; seed it "
                    "from a named stream: default_rng([seed, _STREAM])",
                )


# Call-derived seeds that are fine: explicitly spawning from a SeedSequence
# is the documented derivation mechanism.
_ALLOWED_SEED_CALL_TAILS = ("SeedSequence", "spawn")


@register_rule
class RNGStreamDiscipline(Rule):
    code = "RPL004"
    name = "rng-stream-discipline"
    description = (
        "derived seeds (arithmetic or sampled) risk stream collisions; use "
        "the named-stream pattern default_rng([seed, _STREAM]) or "
        "SeedSequence.spawn"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None or name.split(".")[-1] != "default_rng":
                continue
            if not node.args:
                continue  # RPL003's department
            seed = node.args[0]
            if isinstance(seed, ast.BinOp):
                yield self.finding(
                    module, node,
                    "default_rng(<arithmetic seed>) is collision-prone "
                    "(`seed + k` aliases the root stream of seed+k); use "
                    "default_rng([seed, _NAMED_STREAM])",
                )
            elif isinstance(seed, ast.Call):
                tail = (call_name(seed) or "").split(".")[-1]
                if tail not in _ALLOWED_SEED_CALL_TAILS:
                    yield self.finding(
                        module, node,
                        "default_rng(<sampled seed>) derives a stream by "
                        "drawing from another generator; two draws can "
                        "collide -- use default_rng([seed, _NAMED_STREAM]) "
                        "or SeedSequence.spawn",
                    )
