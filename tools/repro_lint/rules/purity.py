"""Link-model purity (RPL010).

Every ``LinkSpeedModel`` must be a *pure function of time*: the invariant
suite (`tests/network/test_link_invariants.py`) probes this at runtime by
comparing repeated queries, but a stored-RNG advance or a lazily-mutated
cache that only shifts answers across *different* query orders can slip
past it. This rule bans the mechanisms statically: inside a query-path
method of a LinkSpeedModel subclass there is no assigning to ``self``, no
advancing a stored RNG, and no wall-clock read.

Constructing a *fresh* deterministic generator per query
(``default_rng([self.seed, interval])``) is explicitly allowed -- that is
the purity pattern, not a violation.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro_lint.config import (
    PURITY_BASE_CLASSES,
    PURITY_EXEMPT_METHODS,
    RNG_ADVANCE_METHODS,
)
from repro_lint.core import Finding, Module, Rule, register_rule
from repro_lint.rules import dotted_name, self_attribute_chain
from repro_lint.rules.wallclock import banned_clock_name


def _base_names(cls: ast.ClassDef) -> list[str]:
    names = []
    for base in cls.bases:
        name = dotted_name(base)
        if name is not None:
            names.append(name.split(".")[-1])
    return names


def _link_model_classes(tree: ast.Module) -> list[ast.ClassDef]:
    """Subclasses of a purity base, resolved transitively within the module."""
    classes = [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]
    marked = set(PURITY_BASE_CLASSES)
    # Fixed point over within-module inheritance chains (StaticLinks ->
    # RegionalLinks and the like); cross-module chains are out of reach for
    # a single-file pass, which is fine -- the models live in links.py.
    changed = True
    while changed:
        changed = False
        for cls in classes:
            if cls.name in marked:
                continue
            if any(base in marked for base in _base_names(cls)):
                marked.add(cls.name)
                changed = True
    return [c for c in classes if c.name in marked and c.name not in PURITY_BASE_CLASSES]


def _is_classmethod(fn: ast.FunctionDef) -> bool:
    for decorator in fn.decorator_list:
        name = dotted_name(decorator)
        if name and name.split(".")[-1] in ("classmethod", "staticmethod"):
            return True
    return False


@register_rule
class LinkModelPurity(Rule):
    code = "RPL010"
    name = "link-model-purity"
    description = (
        "query-path methods of LinkSpeedModel subclasses must not mutate "
        "self, advance a stored RNG, or read the wall clock"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for cls in _link_model_classes(module.tree):
            for item in cls.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                if item.name in PURITY_EXEMPT_METHODS or _is_classmethod(item):
                    continue
                yield from self._check_method(module, cls, item)

    def _check_method(
        self, module: Module, cls: ast.ClassDef, fn: ast.FunctionDef
    ) -> Iterator[Finding]:
        where = f"{cls.name}.{fn.name}"
        for node in ast.walk(fn):
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                root = target
                while isinstance(root, (ast.Subscript, ast.Starred)):
                    root = root.value
                if self_attribute_chain(root) is not None:
                    yield self.finding(
                        module, node,
                        f"{where} assigns to self -- query paths must be "
                        "pure functions of time",
                    )
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name and name.startswith("self.") \
                        and len(name.split(".")) >= 3 \
                        and name.split(".")[-1] in RNG_ADVANCE_METHODS:
                    yield self.finding(
                        module, node,
                        f"{where} advances a stored RNG (`{name}`); answers "
                        "would depend on query order -- derive a fresh "
                        "generator from (seed, time) instead",
                    )
            if isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if banned_clock_name(name):
                    yield self.finding(
                        module, node,
                        f"{where} reads the wall clock (`{name}`) -- link "
                        "speeds must depend only on simulated time",
                    )
