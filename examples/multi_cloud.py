#!/usr/bin/env python
"""Geo-distributed training across six cloud regions (paper Appendix G).

One worker per region (US West, US East, Ireland, Mumbai, Singapore,
Tokyo); same-continent links are ~12x faster than cross-continent ones.
Data is non-IID per Table VII (each region misses three MNIST labels).
Compares NetMax against AD-PSGD and both parameter-server modes, printing
test accuracy over time -- the paper's Fig. 19.

Run:  python examples/multi_cloud.py
"""

from repro import (
    TrainerConfig,
    make_workload,
    multi_cloud_scenario,
    run_comparison,
)
from repro.datasets import PAPER_CLOUD_LOST_LABELS
from repro.experiments import render_table
from repro.ml.optim import ConstantLR

ALGORITHMS = ["ps-syn", "ps-asyn", "adpsgd", "netmax"]


def main() -> None:
    scenario = multi_cloud_scenario()
    workload = make_workload(
        model="mobilenet",
        dataset="mnist",
        num_workers=scenario.num_workers,
        partition="drop-labels",
        lost_labels=list(PAPER_CLOUD_LOST_LABELS),
        batch_size=32,
        num_samples=4096,
        seed=9,
    )
    config = TrainerConfig(
        max_sim_time=400.0,
        eval_interval_s=20.0,
        lr_schedule=ConstantLR(0.01),
        seed=9,
    )
    results = run_comparison(ALGORITHMS, scenario, workload, config)

    print("test accuracy over (virtual) time:")
    header = "  t(s)   " + "  ".join(f"{name:>8s}" for name in ALGORITHMS)
    print(header)
    arrays = {name: results[name].history.as_arrays() for name in ALGORITHMS}
    num_points = len(arrays[ALGORITHMS[0]]["time"])
    for i in range(num_points):
        t = arrays[ALGORITHMS[0]]["time"][i]
        cells = "  ".join(
            f"{arrays[name]['test_accuracy'][i]:8.3f}" if i < len(arrays[name]["time"])
            else " " * 8
            for name in ALGORITHMS
        )
        print(f"  {t:6.0f} {cells}")

    rows = [
        [name, results[name].history.final_accuracy(),
         results[name].costs.summary()["epoch_time"]]
        for name in ALGORITHMS
    ]
    print()
    print(render_table(
        ["algorithm", "final_accuracy", "epoch_time_s"],
        rows,
        title="Multi-cloud MNIST (6 regions, non-IID per Table VII)",
    ))
    print("\nPaper shape: NetMax ~1.9-2.1x faster to a given accuracy than "
          "AD-PSGD / PS-asyn / PS-syn; PS-syn is slowest (bounded by the "
          "slowest WAN link to the server).")


if __name__ == "__main__":
    main()
