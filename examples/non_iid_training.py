#!/usr/bin/env python
"""Non-IID decentralized training (paper Section V-F, Table IV).

Each of the 8 workers loses three MNIST labels entirely -- worker 0 never
sees digits 0, 1, 2, and so on per Table IV -- and trains MobileNet with
batch 32 and lr 0.01. The run demonstrates how NetMax's 1/p_im pull
weighting keeps information flowing from rarely-contacted neighbors, so
every replica still learns all ten classes.

Run:  python examples/non_iid_training.py
"""

import numpy as np

from repro import TrainerConfig, heterogeneous_scenario, make_workload, run_comparison
from repro.datasets import PAPER_MNIST_LOST_LABELS
from repro.experiments import render_table
from repro.ml.optim import ConstantLR


def main() -> None:
    workload = make_workload(
        model="mobilenet",
        dataset="mnist",
        num_workers=8,
        partition="drop-labels",
        lost_labels=list(PAPER_MNIST_LOST_LABELS),
        batch_size=32,
        num_samples=4096,
        seed=5,
    )
    print("per-worker lost labels (Table IV):")
    for worker, lost in enumerate(PAPER_MNIST_LOST_LABELS):
        shard = workload.shards[worker]
        present = np.flatnonzero(shard.label_histogram() > 0)
        print(f"  w{worker}: lost {lost}  -> classes present: {present.tolist()}")

    scenario = heterogeneous_scenario(num_workers=8, seed=5)
    config = TrainerConfig(
        max_sim_time=200.0,
        eval_interval_s=10.0,
        lr_schedule=ConstantLR(0.01),
        seed=5,
    )
    results = run_comparison(["adpsgd", "netmax"], scenario, workload, config)

    rows = [
        [name, r.history.final_loss(), r.history.final_accuracy(),
         r.consensus_distance()]
        for name, r in results.items()
    ]
    print()
    print(render_table(
        ["algorithm", "final_loss", "test_accuracy", "consensus_distance"],
        rows,
        title="MobileNet on non-IID MNIST (8 workers, Table IV label drops)",
    ))
    print("\nDespite each worker missing 3 digits locally, the consensus "
          "model classifies all 10 (paper reports ~93% under this split, "
          "down from ~99% IID).")


if __name__ == "__main__":
    main()
