#!/usr/bin/env python
"""Explore Algorithm 3's communication policies on hand-built networks.

No training here -- this example isolates the paper's core optimization:
given measured iteration times over a topology, what selection
probabilities minimize predicted convergence time? It walks the Fig. 2
example (node 3 with two slow links and one fast link), prints the policy,
the mixing matrix's second eigenvalue, and the theoretical deviation bound
of Theorem 1.

Run:  python examples/policy_playground.py
"""

import numpy as np

from repro import Topology, generate_policy, uniform_policy
from repro.core import (
    convergence_time,
    deviation_bound,
    expected_mixing_matrix,
    is_doubly_stochastic,
    second_largest_eigenvalue,
)


def fig2_times(num_workers: int = 5) -> np.ndarray:
    """The left side of the paper's Fig. 2: node 3's links to 1 and 4 are
    slow (9 and 12 time units), to 2 fast (1 unit); everything else fast."""
    times = np.full((num_workers, num_workers), 2.0)
    np.fill_diagonal(times, 0.5)
    times[3, 1] = times[1, 3] = 9.0
    times[3, 4] = times[4, 3] = 12.0
    times[3, 2] = times[2, 3] = 1.0
    return times


def main() -> None:
    topology = Topology.fully_connected(5)
    indicator = topology.indicator()
    times = fig2_times()
    alpha = 0.1

    print("iteration-time matrix (paper Fig. 2, node indices 0-4):")
    print(times)

    result = generate_policy(times, indicator, alpha, outer_rounds=10, inner_rounds=10)
    print(f"\nAlgorithm 3 result: rho={result.rho:.3f}  t_bar={result.t_bar:.4f}  "
          f"lambda2={result.lambda2:.4f}  "
          f"predicted T_conv={result.predicted_convergence_time:.2f}")
    print(f"grid: {result.candidates_evaluated} feasible / "
          f"{result.candidates_infeasible} infeasible candidates")
    print("\nadaptive policy (note node 3 concentrates on its fast peer 2):")
    print(np.array_str(result.policy, precision=3, suppress_small=True))

    mixing = expected_mixing_matrix(result.policy, indicator, alpha, result.rho)
    print(f"\nY_P doubly stochastic: {is_doubly_stochastic(mixing)}  "
          f"lambda2: {second_largest_eigenvalue(mixing):.4f}")

    # Compare against the uniform (AD-PSGD style) policy at the same rho.
    uniform = uniform_policy(indicator)
    uniform_t = float(np.mean(np.sum(times * uniform * indicator, axis=1))) / 5
    uniform_mixing = expected_mixing_matrix(uniform, indicator, alpha, result.rho)
    uniform_lambda = second_largest_eigenvalue(uniform_mixing)
    print(f"\nuniform policy: t_bar~{uniform_t:.4f}  lambda2={uniform_lambda:.4f}  "
          f"predicted T_conv={convergence_time(uniform_t, uniform_lambda, 1e-2):.2f}")
    print(f"adaptive policy is predicted "
          f"{convergence_time(uniform_t, uniform_lambda, 1e-2) / result.predicted_convergence_time:.2f}x faster")

    print("\nTheorem 1 deviation bound over global steps "
          "(initial deviation 1.0, alpha=0.1, sigma=0.05):")
    for k in (0, 50, 100, 200, 400):
        bound = deviation_bound(result.lambda2, k, 1.0, alpha, 0.05)
        print(f"  k={k:4d}  E||x^k - x*1||^2 <= {bound:.5f}")


if __name__ == "__main__":
    main()
