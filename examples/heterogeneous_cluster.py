#!/usr/bin/env python
"""Compare NetMax against the paper's baselines on a heterogeneous cluster.

Reproduces the Fig. 5 / Fig. 8 setting at example scale: 8 workers across 3
servers with a rotating 2-100x slowed link, training ResNet18 on synthetic
CIFAR10. Prints the epoch-time decomposition (computation vs communication)
and time-to-loss speedups for NetMax, AD-PSGD, Allreduce-SGD, and Prague.

Run:  python examples/heterogeneous_cluster.py
"""

from repro import (
    TrainerConfig,
    heterogeneous_scenario,
    make_workload,
    run_comparison,
    time_to_loss_speedups,
)
from repro.experiments import render_table

ALGORITHMS = ["prague", "allreduce", "adpsgd", "netmax"]


def main() -> None:
    scenario = heterogeneous_scenario(num_workers=8, seed=7, slowdown_period_s=120.0)
    workload = make_workload(
        model="resnet18",
        dataset="cifar10",
        num_workers=8,
        batch_size=128,
        num_samples=4096,
        seed=7,
    )
    config = TrainerConfig(max_sim_time=300.0, eval_interval_s=15.0, seed=7)
    results = run_comparison(ALGORITHMS, scenario, workload, config)

    speedups = time_to_loss_speedups(results, reference="adpsgd")
    rows = []
    for name in ALGORITHMS:
        result = results[name]
        summary = result.costs.summary()
        rows.append([
            name,
            summary["computation_cost"],
            summary["communication_cost"],
            summary["epoch_time"],
            result.history.final_loss(),
            speedups[name],
        ])
    print(render_table(
        ["algorithm", "comp_s", "comm_s", "epoch_s", "final_loss", "speedup_vs_adpsgd"],
        rows,
        title="Heterogeneous cluster, 8 workers (cf. paper Figs. 5 & 8)",
    ))
    print("\nExpected shape: computation equal everywhere; NetMax lowest "
          "communication cost and fastest to any given loss level.")


if __name__ == "__main__":
    main()
