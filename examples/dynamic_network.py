#!/usr/bin/env python
"""Watch the Network Monitor adapt when link speeds change mid-training.

Recreates the paper's Fig. 2 scenario with a scripted trace: the link
between workers 0 and 1 is fast for the first half of the run, then turns
50x slow while a previously slow link recovers. A fixed-topology approach
(SAPS-PSGD) keeps gossiping over the now-slow link; NetMax's monitor
re-solves the policy LP and shifts probability away from it.

Run:  python examples/dynamic_network.py
"""

import numpy as np

from repro import Scenario, Topology, TrainerConfig, make_workload, run_comparison
from repro.experiments import render_table
from repro.network import TraceLinks
from repro.network.cluster import ClusterSpec


def build_trace_scenario(num_workers: int = 8, flip_time: float = 150.0) -> Scenario:
    """Fast (0,1) link that turns 50x slow at ``flip_time`` while (0,2) recovers."""
    cluster = ClusterSpec.paper_heterogeneous(num_workers)
    base = cluster.bandwidth_matrix()
    before = base.copy()
    before[0, 2] = before[2, 0] = base[0, 2] / 50.0  # (0,2) starts slow
    after = base.copy()
    after[0, 1] = after[1, 0] = base[0, 1] / 50.0  # (0,1) becomes slow instead
    links = TraceLinks(
        [(0.0, before), (flip_time, after)], cluster.latency_matrix()
    )
    return Scenario("fig2-trace", Topology.fully_connected(num_workers), links)


def main() -> None:
    scenario = build_trace_scenario()
    workload = make_workload(
        model="resnet18",
        dataset="cifar10",
        num_workers=8,
        batch_size=128,
        num_samples=4096,
        seed=11,
    )
    config = TrainerConfig(max_sim_time=300.0, eval_interval_s=15.0, seed=11)
    results = run_comparison(
        ["saps", "adpsgd", "netmax"],
        scenario,
        workload,
        config,
        trainer_kwargs={"netmax": {"monitor_period_s": 25.0}},
    )

    rows = []
    for name, result in results.items():
        summary = result.costs.summary()
        rows.append([name, summary["epoch_time"], result.history.final_loss()])
    print(render_table(
        ["algorithm", "epoch_time_s", "final_loss"],
        rows,
        title="Dynamic network (fast link flips slow at t=150s, cf. paper Fig. 2)",
    ))

    netmax = results["netmax"]
    if "final_policy" in netmax.extras:
        policy = netmax.extras["final_policy"]
        print("\nNetMax final policy row of worker 0 "
              "(probability on peer 1 should be near its floor after the flip):")
        print(np.array_str(policy[0], precision=3, suppress_small=True))
    saps = results["saps"]
    print("\nSAPS fixed subgraph (chosen at t=0, cannot adapt):",
          saps.extras["fixed_subgraph_edges"])


if __name__ == "__main__":
    main()
