#!/usr/bin/env python
"""Quickstart: train one model with NetMax on a simulated heterogeneous cluster.

Builds the paper's default setting -- 8 workers over 3 servers, fully
connected, one randomly slowed link rotating over time -- trains a ResNet18
stand-in on synthetic CIFAR10 with NetMax, and prints the loss trajectory,
the epoch-time decomposition, and the final communication policy the
Network Monitor converged to.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import TrainerConfig, heterogeneous_scenario, make_workload, run_trainer


def main() -> None:
    scenario = heterogeneous_scenario(num_workers=8, seed=42)
    workload = make_workload(
        model="resnet18",
        dataset="cifar10",
        num_workers=8,
        batch_size=128,
        num_samples=4096,
        seed=42,
    )
    config = TrainerConfig(max_sim_time=240.0, eval_interval_s=20.0, seed=42)

    print(f"scenario: {scenario.name}   workload: {workload.model_name} "
          f"on {workload.dataset_name} ({workload.num_workers} workers)")
    result = run_trainer("netmax", scenario, workload, config, monitor_period_s=30.0)

    print("\nloss trajectory (virtual time):")
    arrays = result.history.as_arrays()
    for t, epoch, loss, acc in zip(
        arrays["time"], arrays["epoch"], arrays["train_loss"], arrays["test_accuracy"]
    ):
        print(f"  t={t:6.1f}s  epoch={epoch:6.1f}  loss={loss:.3f}  test_acc={acc:.3f}")

    summary = result.costs.summary()
    print(f"\nepoch time: {summary['epoch_time']:.2f}s "
          f"(computation {summary['computation_cost']:.2f}s, "
          f"communication {summary['communication_cost']:.2f}s)")
    print(f"consensus distance across replicas: {result.consensus_distance():.5f}")

    if "final_policy" in result.extras:
        print(f"\nNetwork Monitor: {result.extras['monitor_stats']}")
        print(f"final rho={result.extras['final_rho']:.3f}  "
              f"lambda2={result.extras['final_lambda2']:.4f}")
        print("final neighbor-selection policy (rows = workers):")
        print(np.array_str(result.extras["final_policy"], precision=2, suppress_small=True))


if __name__ == "__main__":
    main()
